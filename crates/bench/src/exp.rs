//! The experiment sections: one function per table/figure of the paper.
//!
//! Each takes captured benchmark data and returns the formatted section as
//! a string, so `experiments` can run everything and the per-figure
//! binaries can run one.

use crate::{pct, row, BenchData};
use ntp_core::{
    evaluate, CounterSpec, Dolc, NextTracePredictor, PredictorConfig, RhsConfig, StoredTarget,
    UnboundedConfig, UnboundedPredictor,
};
use ntp_engine::{DelayedUpdateEngine, EngineConfig};

/// Depths studied throughout the evaluation (0–7, as in §5.2).
pub const DEPTHS: std::ops::RangeInclusive<usize> = 0..=7;

/// Bounded table sizes studied (log2 entries): our reconstruction of the
/// paper's three sizes (the OCR drops the exponents; Table 3's index widths
/// are 12/15/18).
pub const TABLE_BITS: [u32; 3] = [12, 15, 18];

fn header(title: &str) -> String {
    format!("\n==== {title} ====\n")
}

/// Table 1: benchmark summary.
pub fn table1(data: &[BenchData]) -> String {
    let mut s = header("Table 1: benchmark summary");
    s += &row(&[
        "bench".into(),
        "Minstr".into(),
        "traces".into(),
        "avg-len".into(),
        "static".into(),
        "br/tr".into(),
        "dup".into(),
    ]);
    s.push('\n');
    for d in data {
        s += &row(&[
            d.name.into(),
            format!("{:.1}", d.icount as f64 / 1e6),
            format!("{}", d.trace_stats.traces()),
            format!("{:.1}", d.trace_stats.avg_trace_len()),
            format!("{}", d.trace_stats.static_traces()),
            format!("{:.2}", d.trace_stats.branches_per_trace()),
            format!("{:.2}", d.redundancy.duplication_factor()),
        ]);
        s.push('\n');
    }
    s
}

/// Table 2: the idealized sequential predictor (16-bit gshare + perfect
/// BTB/RAS + 4K correlated indirect buffer), plus the realizable
/// single-access multiple-branch predictor for context.
pub fn table2(data: &[BenchData]) -> String {
    let mut s = header("Table 2: prediction accuracy of sequential predictors");
    s += &row(&[
        "bench".into(),
        "gshare%".into(),
        "br/tr".into(),
        "seq-tr%".into(),
        "multi%".into(),
        "gag%".into(),
    ]);
    s.push('\n');
    let mut seq_sum = 0.0;
    for d in data {
        seq_sum += d.seq_stats.trace_mispredict_pct();
        s += &row(&[
            d.name.into(),
            pct(d.seq_stats.branch_mispredict_pct()),
            format!("{:.2}", d.seq_stats.branches_per_trace()),
            pct(d.seq_stats.trace_mispredict_pct()),
            pct(d.mb_stats.trace_mispredict_pct()),
            pct(d.gag_stats.trace_mispredict_pct()),
        ]);
        s.push('\n');
    }
    s += &format!(
        "mean sequential trace misprediction: {:.2}%\n",
        seq_sum / data.len() as f64
    );
    s
}

/// Table 3: the DOLC index-generation configurations in use.
pub fn table3() -> String {
    let mut s = header("Table 3: index generation configurations (D-O-L-C)");
    s += &row(&[
        "depth".into(),
        "12-bit".into(),
        "parts".into(),
        "15-bit".into(),
        "parts".into(),
        "18-bit".into(),
        "parts".into(),
    ]);
    s.push('\n');
    for depth in DEPTHS {
        let mut cells = vec![format!("{depth}")];
        for bits in TABLE_BITS {
            let d = Dolc::standard(depth, bits);
            cells.push(format!("{d}"));
            cells.push(format!("({}p)", d.parts(bits)));
        }
        s += &row(&cells);
        s.push('\n');
    }
    s
}

/// Figure 6: unbounded tables, depths 0–7, for the correlated-only, hybrid,
/// and hybrid+RHS predictors, with the sequential baseline as reference.
pub fn fig6(data: &[BenchData]) -> String {
    let mut s = header("Figure 6: next trace prediction with unbounded tables (mispredict %)");
    let mut means = [0.0f64; 3];
    for d in data {
        s += &format!(
            "-- {} (sequential reference: {:.2}%)\n",
            d.name,
            d.seq_stats.trace_mispredict_pct()
        );
        s += &row(&[
            "depth".into(),
            "corr".into(),
            "hybrid".into(),
            "hyb+RHS".into(),
        ]);
        s.push('\n');
        for depth in DEPTHS {
            let configs = [
                UnboundedConfig::correlated_only(depth),
                UnboundedConfig::hybrid_no_rhs(depth),
                UnboundedConfig::paper(depth),
            ];
            let mut cells = vec![format!("{depth}")];
            for (k, cfg) in configs.iter().enumerate() {
                let mut p = UnboundedPredictor::new(*cfg);
                let stats = evaluate(&mut p, &d.records);
                cells.push(pct(stats.mispredict_pct()));
                if depth == *DEPTHS.end() {
                    means[k] += stats.mispredict_pct();
                }
            }
            s += &row(&cells);
            s.push('\n');
        }
    }
    s += &format!(
        "means at depth {} — corr {:.2}%, hybrid {:.2}%, hybrid+RHS {:.2}%\n",
        DEPTHS.end(),
        means[0] / data.len() as f64,
        means[1] / data.len() as f64,
        means[2] / data.len() as f64,
    );
    s
}

/// Figure 7: bounded tables (2^12 / 2^15 / 2^18 entries), hybrid + RHS,
/// across history depths, with the sequential baseline as reference.
pub fn fig7(data: &[BenchData]) -> String {
    let mut s = header("Figure 7: next trace prediction with bounded tables (mispredict %)");
    let mut means = vec![0.0f64; TABLE_BITS.len()];
    for d in data {
        s += &format!(
            "-- {} (sequential reference: {:.2}%)\n",
            d.name,
            d.seq_stats.trace_mispredict_pct()
        );
        s += &row(&["depth".into(), "2^12".into(), "2^15".into(), "2^18".into()]);
        s.push('\n');
        for depth in DEPTHS {
            let mut cells = vec![format!("{depth}")];
            for (k, bits) in TABLE_BITS.iter().enumerate() {
                let mut p = NextTracePredictor::new(PredictorConfig::paper(*bits, depth));
                let stats = evaluate(&mut p, &d.records);
                cells.push(pct(stats.mispredict_pct()));
                if depth == *DEPTHS.end() {
                    means[k] += stats.mispredict_pct();
                }
            }
            s += &row(&cells);
            s.push('\n');
        }
    }
    s += &format!(
        "means at depth {} — 2^12: {:.2}%, 2^15: {:.2}%, 2^18: {:.2}%\n",
        DEPTHS.end(),
        means[0] / data.len() as f64,
        means[1] / data.len() as f64,
        means[2] / data.len() as f64,
    );
    s
}

/// Table 4: immediate (ideal) vs retire-time (real) updates at 2^15
/// entries, maximum depth.
pub fn table4(data: &[BenchData]) -> String {
    let mut s = header("Table 4: impact of real (retire-time) updates, 2^15 entries, depth 7");
    s += &row(&[
        "bench".into(),
        "ideal%".into(),
        "real%".into(),
        "IPC".into(),
    ]);
    s.push('\n');
    for d in data {
        let cfg = PredictorConfig::paper(15, 7);
        let mut ideal = NextTracePredictor::new(cfg);
        let ideal_stats = evaluate(&mut ideal, &d.records);
        let mut engine =
            DelayedUpdateEngine::new(NextTracePredictor::new(cfg), EngineConfig::default());
        let real = engine.run(&d.records);
        s += &row(&[
            d.name.into(),
            pct(ideal_stats.mispredict_pct()),
            pct(real.prediction.mispredict_pct()),
            format!("{:.2}", real.ipc()),
        ]);
        s.push('\n');
    }
    s
}

/// Figure 8: alternate trace prediction — primary misprediction rate vs
/// the rate at which both primary and alternate miss, per depth.
pub fn fig8(data: &[BenchData]) -> String {
    let mut s = header("Figure 8: alternate trace prediction, 2^15 entries (mispredict %)");
    for d in data {
        s += &format!("-- {}\n", d.name);
        s += &row(&[
            "depth".into(),
            "primary".into(),
            "both".into(),
            "rescued".into(),
        ]);
        s.push('\n');
        for depth in DEPTHS {
            let mut p = NextTracePredictor::new(PredictorConfig::paper_with_alternate(15, depth));
            let stats = evaluate(&mut p, &d.records);
            s += &row(&[
                format!("{depth}"),
                pct(stats.mispredict_pct()),
                pct(stats.both_mispredict_pct()),
                format!("{:.0}%", 100.0 * stats.alternate_rescue_fraction()),
            ]);
            s.push('\n');
        }
    }
    s
}

/// §5.5: the cost-reduced predictor (tables store the 16-bit hashed index
/// instead of the 36-bit identifier).
pub fn cost_reduced(data: &[BenchData]) -> String {
    let mut s = header("Sec. 5.5: cost-reduced predictor (hashed-target entries), 2^15, depth 7");
    let full_cfg = PredictorConfig::paper(15, 7);
    let hashed_cfg = PredictorConfig {
        stored_target: StoredTarget::Hashed,
        ..full_cfg
    };
    s += &format!(
        "entry: {} bits -> {} bits; table: {} KB -> {} KB\n",
        full_cfg.corr_entry_bits(),
        hashed_cfg.corr_entry_bits(),
        full_cfg.corr_table_bits() / 8192,
        hashed_cfg.corr_table_bits() / 8192,
    );
    s += &row(&["bench".into(), "full%".into(), "hashed%".into()]);
    s.push('\n');
    for d in data {
        let mut full = NextTracePredictor::new(full_cfg);
        let mut hashed = NextTracePredictor::new(hashed_cfg);
        let fs = evaluate(&mut full, &d.records);
        let hs = evaluate(&mut hashed, &d.records);
        s += &row(&[
            d.name.into(),
            pct(fs.mispredict_pct()),
            pct(hs.mispredict_pct()),
        ]);
        s.push('\n');
    }
    s
}

/// Ablations over the design choices DESIGN.md calls out: counter policy,
/// tag width, RHS depth, and secondary-table size, on the two
/// aliasing-stressed benchmarks (cc, go).
pub fn ablations(data: &[BenchData]) -> String {
    let stressed: Vec<&BenchData> = data
        .iter()
        .filter(|d| d.name == "cc" || d.name == "go")
        .collect();
    let base = PredictorConfig::paper(15, 7);
    let mut s = header("Ablations (2^15 entries, depth 7; cc and go)");

    let run = |cfg: PredictorConfig, d: &BenchData| {
        let mut p = NextTracePredictor::new(cfg);
        evaluate(&mut p, &d.records).mispredict_pct()
    };

    s += "-- correlating-counter policy\n";
    for (label, ctr) in [
        ("inc1/dec2 (paper)", CounterSpec::PRIMARY),
        ("2-bit classic", CounterSpec::TWO_BIT),
        ("1-bit", CounterSpec::ONE_BIT),
    ] {
        let mut cells = vec![label.to_string()];
        for d in &stressed {
            cells.push(pct(run(
                PredictorConfig {
                    primary_counter: ctr,
                    ..base
                },
                d,
            )));
        }
        s += &format!("{:<20}{}\n", cells[0], row(&cells[1..]));
    }

    s += "-- tag width (bits)\n";
    for tag_bits in [0u32, 4, 8, 10, 16] {
        let mut cells = vec![format!("tag={tag_bits}")];
        for d in &stressed {
            cells.push(pct(run(PredictorConfig { tag_bits, ..base }, d)));
        }
        s += &format!("{:<20}{}\n", cells[0], row(&cells[1..]));
    }

    s += "-- return history stack\n";
    for (label, rhs) in [
        ("RHS off", None),
        ("RHS depth 1", Some(RhsConfig { max_depth: 1 })),
        ("RHS depth 4", Some(RhsConfig { max_depth: 4 })),
        ("RHS depth 16", Some(RhsConfig { max_depth: 16 })),
    ] {
        let mut cells = vec![label.to_string()];
        for d in &stressed {
            cells.push(pct(run(PredictorConfig { rhs, ..base }, d)));
        }
        s += &format!("{:<20}{}\n", cells[0], row(&cells[1..]));
    }

    s += "-- secondary table size (log2 entries)\n";
    for bits in [8u32, 11, 14, 16] {
        let mut cells = vec![format!("secondary=2^{bits}")];
        for d in &stressed {
            cells.push(pct(run(
                PredictorConfig {
                    secondary_index_bits: bits,
                    ..base
                },
                d,
            )));
        }
        s += &format!("{:<20}{}\n", cells[0], row(&cells[1..]));
    }

    s += "-- secondary counter decrement (4-bit counter)\n";
    for dec in [1u8, 4, 8, 15] {
        let mut cells = vec![format!("dec={dec}")];
        for d in &stressed {
            cells.push(pct(run(
                PredictorConfig {
                    secondary_counter: CounterSpec {
                        bits: 4,
                        inc: 1,
                        dec,
                    },
                    ..base
                },
                d,
            )));
        }
        s += &format!("{:<20}{}\n", cells[0], row(&cells[1..]));
    }
    s
}

/// Extension: confidence estimation for trace predictions (resetting
/// counters, after the authors' MICRO-29 confidence paper) — coverage of
/// the high-confidence class and misprediction inside each class.
pub fn confidence(data: &[BenchData]) -> String {
    use ntp_core::{evaluate_with_confidence, ConfidenceConfig, ConfidenceEstimator};
    let mut s =
        header("Extension: prediction confidence (2^14 resetting counters, 2^15 predictor)");
    s += &row(&[
        "bench".into(),
        "cover%".into(),
        "hi-mis%".into(),
        "lo-mis%".into(),
        "caught%".into(),
    ]);
    s.push('\n');
    for d in data {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
        let mut est = ConfidenceEstimator::new(ConfidenceConfig {
            threshold: 8,
            ..ConfidenceConfig::paper_like()
        });
        let stats = evaluate_with_confidence(&mut p, &mut est, &d.records);
        s += &row(&[
            d.name.into(),
            pct(100.0 * stats.coverage()),
            pct(stats.high_mispredict_pct()),
            pct(stats.low_mispredict_pct()),
            pct(100.0 * stats.mispredictions_caught()),
        ]);
        s.push('\n');
    }
    s
}

/// The headline comparison the abstract quotes: mean misprediction of the
/// paper predictor vs the idealized sequential baseline.
pub fn headline(data: &[BenchData]) -> String {
    let mut s = header("Headline: paper predictor vs idealized sequential baseline");
    let mut seq_mean = 0.0;
    let mut ours = vec![0.0f64; TABLE_BITS.len()];
    for d in data {
        seq_mean += d.seq_stats.trace_mispredict_pct();
        for (k, bits) in TABLE_BITS.iter().enumerate() {
            let mut p = NextTracePredictor::new(PredictorConfig::paper(*bits, 7));
            ours[k] += evaluate(&mut p, &d.records).mispredict_pct();
        }
    }
    let n = data.len() as f64;
    seq_mean /= n;
    s += &format!("sequential (idealized) mean: {seq_mean:.2}%\n");
    for (k, bits) in TABLE_BITS.iter().enumerate() {
        let m = ours[k] / n;
        s += &format!(
            "2^{bits} path-based predictor:  {m:.2}%  ({:+.0}% relative)\n",
            100.0 * (m - seq_mean) / seq_mean
        );
    }
    s
}

/// Extension: the trace-selection study the paper defers (§4.2) — how
/// selection heuristics trade trace length against predictability. The
/// useful composite is *predicted fetch rate*: average trace length times
/// the fraction of traces correctly predicted.
pub fn selection_study() -> String {
    use crate::capture_with;
    use ntp_trace::TraceConfig;
    use ntp_workloads::by_name;

    let scale = crate::scale_from_env();
    let budget = crate::budget_from_env();
    let policies: [(&str, TraceConfig); 5] = [
        ("paper (16/6)", TraceConfig::default()),
        ("short (8/6)", TraceConfig::with_max_len(8)),
        (
            "few-branches (16/3)",
            TraceConfig {
                max_branches: 3,
                ..TraceConfig::default()
            },
        ),
        (
            "stop-at-calls",
            TraceConfig {
                stop_at_calls: true,
                ..TraceConfig::default()
            },
        ),
        (
            "stop-at-back-edges",
            TraceConfig {
                stop_at_loop_back_edges: true,
                ..TraceConfig::default()
            },
        ),
    ];

    let mut s = header("Extension: trace selection vs predictability (2^15, depth 7)");
    for name in ["cc", "go", "xlisp"] {
        let w = by_name(name, scale);
        s += &format!("-- {name}\n");
        s += &format!(
            "{:<22}{:>9}{:>9}{:>7}{:>9}{:>11}\n",
            "policy", "avg-len", "static", "dup", "mis%", "fetch-rate"
        );
        for (label, cfg) in policies {
            let d = capture_with(&w, budget, cfg);
            let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
            let stats = evaluate(&mut p, &d.records);
            let fetch_rate = d.trace_stats.avg_trace_len() * (1.0 - stats.mispredict_pct() / 100.0);
            s += &format!(
                "{:<22}{:>9.1}{:>9}{:>7.2}{:>9.2}{:>11.2}\n",
                label,
                d.trace_stats.avg_trace_len(),
                d.trace_stats.static_traces(),
                d.redundancy.duplication_factor(),
                stats.mispredict_pct(),
                fetch_rate
            );
        }
    }
    s
}

/// Extension: trace-processor throughput (the consumer architecture) —
/// IPC with 4 PEs at depth 0 vs depth 7, per benchmark.
pub fn trace_processor(data: &[BenchData]) -> String {
    use ntp_engine::{TraceProcessor, TraceProcessorConfig};
    let mut s = header("Extension: trace-processor throughput (4 PEs x 4-wide, 2^15 predictor)");
    s += &row(&[
        "bench".into(),
        "d0 IPC".into(),
        "d7 IPC".into(),
        "d0 mis%".into(),
        "d7 mis%".into(),
    ]);
    s.push('\n');
    for d in data {
        let mut cells = vec![d.name.to_string()];
        let mut mis = Vec::new();
        for depth in [0usize, 7] {
            let mut tp = TraceProcessor::new(
                NextTracePredictor::new(PredictorConfig::paper(15, depth)),
                TraceProcessorConfig::default(),
            );
            let stats = tp.run(&d.records);
            cells.push(format!("{:.2}", stats.ipc()));
            mis.push(pct(stats.mispredict_pct()));
        }
        cells.extend(mis);
        s += &row(&cells);
        s.push('\n');
    }
    s
}
