//! The experiment sections: one function per table/figure of the paper.
//!
//! Each takes captured benchmark data and returns the formatted section as
//! a string, so `experiments` can run everything and the per-figure
//! binaries can run one.

use crate::{pct, record_section_throughput, row, BenchData};
use ntp_core::{
    evaluate, evaluate_batch_fresh, CounterSpec, Dolc, NextTracePredictor, PredictorConfig,
    RhsConfig, StoredTarget, UnboundedConfig, UnboundedPredictor,
};
use ntp_engine::{DelayedUpdateEngine, EngineConfig};
use ntp_runner::{map_ordered_stats, thread_count};
use ntp_telemetry::ReplayThroughput;

/// Depths studied throughout the evaluation (0–7, as in §5.2).
pub const DEPTHS: std::ops::RangeInclusive<usize> = 0..=7;

/// Bounded table sizes studied (log2 entries): our reconstruction of the
/// paper's three sizes (the OCR drops the exponents; Table 3's index widths
/// are 12/15/18).
pub const TABLE_BITS: [u32; 3] = [12, 15, 18];

/// Fans a section's independent replay jobs out over `NTP_THREADS` scoped
/// workers, records the section's replay throughput (`records` = predictor
/// lookups across all jobs), and returns results **in submission order** —
/// so section text formatted from the result vector is byte-identical at
/// any thread count.
fn fan_out<T, R>(label: &str, records: u64, jobs: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let (results, stats) = map_ordered_stats(thread_count(), jobs, |_, job| f(job));
    record_section_throughput(ReplayThroughput {
        label: label.to_string(),
        records,
        wall: stats.wall,
        busy: stats.busy,
        threads: stats.threads,
    });
    results
}

/// Total records replayed when every benchmark is evaluated `per_bench`
/// times (the usual shape of a section's job grid).
fn replayed(data: &[BenchData], per_bench: u64) -> u64 {
    data.iter().map(|d| d.records.len() as u64).sum::<u64>() * per_bench
}

fn header(title: &str) -> String {
    format!("\n==== {title} ====\n")
}

/// Table 1: benchmark summary.
pub fn table1(data: &[BenchData]) -> String {
    let mut s = header("Table 1: benchmark summary");
    s += &row(&[
        "bench".into(),
        "Minstr".into(),
        "traces".into(),
        "avg-len".into(),
        "static".into(),
        "br/tr".into(),
        "dup".into(),
    ]);
    s.push('\n');
    for d in data {
        s += &row(&[
            d.name.into(),
            format!("{:.1}", d.icount as f64 / 1e6),
            format!("{}", d.trace_stats.traces()),
            format!("{:.1}", d.trace_stats.avg_trace_len()),
            format!("{}", d.trace_stats.static_traces()),
            format!("{:.2}", d.trace_stats.branches_per_trace()),
            format!("{:.2}", d.redundancy.duplication_factor()),
        ]);
        s.push('\n');
    }
    s
}

/// Table 2: the idealized sequential predictor (16-bit gshare + perfect
/// BTB/RAS + 4K correlated indirect buffer), plus the realizable
/// single-access multiple-branch predictor for context.
pub fn table2(data: &[BenchData]) -> String {
    let mut s = header("Table 2: prediction accuracy of sequential predictors");
    s += &row(&[
        "bench".into(),
        "gshare%".into(),
        "br/tr".into(),
        "seq-tr%".into(),
        "multi%".into(),
        "gag%".into(),
    ]);
    s.push('\n');
    let mut seq_sum = 0.0;
    for d in data {
        seq_sum += d.seq_stats.trace_mispredict_pct();
        s += &row(&[
            d.name.into(),
            pct(d.seq_stats.branch_mispredict_pct()),
            format!("{:.2}", d.seq_stats.branches_per_trace()),
            pct(d.seq_stats.trace_mispredict_pct()),
            pct(d.mb_stats.trace_mispredict_pct()),
            pct(d.gag_stats.trace_mispredict_pct()),
        ]);
        s.push('\n');
    }
    s += &format!(
        "mean sequential trace misprediction: {:.2}%\n",
        seq_sum / data.len() as f64
    );
    s
}

/// Table 3: the DOLC index-generation configurations in use.
pub fn table3() -> String {
    let mut s = header("Table 3: index generation configurations (D-O-L-C)");
    s += &row(&[
        "depth".into(),
        "12-bit".into(),
        "parts".into(),
        "15-bit".into(),
        "parts".into(),
        "18-bit".into(),
        "parts".into(),
    ]);
    s.push('\n');
    for depth in DEPTHS {
        let mut cells = vec![format!("{depth}")];
        for bits in TABLE_BITS {
            let d = Dolc::standard(depth, bits);
            cells.push(format!("{d}"));
            cells.push(format!("({}p)", d.parts(bits)));
        }
        s += &row(&cells);
        s.push('\n');
    }
    s
}

/// Figure 6: unbounded tables, depths 0–7, for the correlated-only, hybrid,
/// and hybrid+RHS predictors, with the sequential baseline as reference.
pub fn fig6(data: &[BenchData]) -> String {
    let mut s = header("Figure 6: next trace prediction with unbounded tables (mispredict %)");
    // One job per (benchmark, depth); each replays the three predictor
    // variants. Results come back in submission order, so the serial
    // formatting below is byte-identical at any thread count.
    let jobs: Vec<(usize, usize)> = (0..data.len())
        .flat_map(|b| DEPTHS.map(move |depth| (b, depth)))
        .collect();
    let per_bench = 3 * DEPTHS.count() as u64;
    let results = fan_out("fig6", replayed(data, per_bench), &jobs, |&(b, depth)| {
        let d = &data[b];
        [
            UnboundedConfig::correlated_only(depth),
            UnboundedConfig::hybrid_no_rhs(depth),
            UnboundedConfig::paper(depth),
        ]
        .map(|cfg| {
            let mut p = UnboundedPredictor::new(cfg);
            evaluate(&mut p, &d.records).mispredict_pct()
        })
    });
    let mut results = results.into_iter();
    let mut means = [0.0f64; 3];
    for d in data {
        s += &format!(
            "-- {} (sequential reference: {:.2}%)\n",
            d.name,
            d.seq_stats.trace_mispredict_pct()
        );
        s += &row(&[
            "depth".into(),
            "corr".into(),
            "hybrid".into(),
            "hyb+RHS".into(),
        ]);
        s.push('\n');
        for depth in DEPTHS {
            let pcts = results.next().expect("one result per (bench, depth)");
            let mut cells = vec![format!("{depth}")];
            for (k, p) in pcts.iter().enumerate() {
                cells.push(pct(*p));
                if depth == *DEPTHS.end() {
                    means[k] += *p;
                }
            }
            s += &row(&cells);
            s.push('\n');
        }
    }
    s += &format!(
        "means at depth {} — corr {:.2}%, hybrid {:.2}%, hybrid+RHS {:.2}%\n",
        DEPTHS.end(),
        means[0] / data.len() as f64,
        means[1] / data.len() as f64,
        means[2] / data.len() as f64,
    );
    s
}

/// Figure 7: bounded tables (2^12 / 2^15 / 2^18 entries), hybrid + RHS,
/// across history depths, with the sequential baseline as reference.
pub fn fig7(data: &[BenchData]) -> String {
    let mut s = header("Figure 7: next trace prediction with bounded tables (mispredict %)");
    // One job per (benchmark, depth), replaying the three table sizes.
    let jobs: Vec<(usize, usize)> = (0..data.len())
        .flat_map(|b| DEPTHS.map(move |depth| (b, depth)))
        .collect();
    let per_bench = TABLE_BITS.len() as u64 * DEPTHS.count() as u64;
    let results = fan_out("fig7", replayed(data, per_bench), &jobs, |&(b, depth)| {
        // The three table sizes are independent sessions over the same
        // stream: one gathered sweep overlaps their table misses and is
        // bit-identical to three scalar replays (the batch-vs-scalar
        // oracle in ntp-verify holds the equivalence).
        let d = &data[b];
        let stats = evaluate_batch_fresh(&[&d.records[..]; TABLE_BITS.len()], |k| {
            NextTracePredictor::new(PredictorConfig::paper(TABLE_BITS[k], depth))
        });
        std::array::from_fn::<f64, { TABLE_BITS.len() }, _>(|k| stats[k].mispredict_pct())
    });
    let mut results = results.into_iter();
    let mut means = vec![0.0f64; TABLE_BITS.len()];
    for d in data {
        s += &format!(
            "-- {} (sequential reference: {:.2}%)\n",
            d.name,
            d.seq_stats.trace_mispredict_pct()
        );
        s += &row(&["depth".into(), "2^12".into(), "2^15".into(), "2^18".into()]);
        s.push('\n');
        for depth in DEPTHS {
            let pcts = results.next().expect("one result per (bench, depth)");
            let mut cells = vec![format!("{depth}")];
            for (k, p) in pcts.iter().enumerate() {
                cells.push(pct(*p));
                if depth == *DEPTHS.end() {
                    means[k] += *p;
                }
            }
            s += &row(&cells);
            s.push('\n');
        }
    }
    s += &format!(
        "means at depth {} — 2^12: {:.2}%, 2^15: {:.2}%, 2^18: {:.2}%\n",
        DEPTHS.end(),
        means[0] / data.len() as f64,
        means[1] / data.len() as f64,
        means[2] / data.len() as f64,
    );
    s
}

/// Table 4: immediate (ideal) vs retire-time (real) updates at 2^15
/// entries, maximum depth.
pub fn table4(data: &[BenchData]) -> String {
    let mut s = header("Table 4: impact of real (retire-time) updates, 2^15 entries, depth 7");
    s += &row(&[
        "bench".into(),
        "ideal%".into(),
        "real%".into(),
        "IPC".into(),
    ]);
    s.push('\n');
    // One job per benchmark: ideal replay plus the delayed-update engine.
    let results = fan_out("table4", replayed(data, 2), data, |d| {
        let cfg = PredictorConfig::paper(15, 7);
        let mut ideal = NextTracePredictor::new(cfg);
        let ideal_stats = evaluate(&mut ideal, &d.records);
        let mut engine =
            DelayedUpdateEngine::new(NextTracePredictor::new(cfg), EngineConfig::default());
        let real = engine.run(&d.records);
        (
            ideal_stats.mispredict_pct(),
            real.prediction.mispredict_pct(),
            real.ipc(),
        )
    });
    for (d, (ideal, real, ipc)) in data.iter().zip(results) {
        s += &row(&[d.name.into(), pct(ideal), pct(real), format!("{ipc:.2}")]);
        s.push('\n');
    }
    s
}

/// Figure 8: alternate trace prediction — primary misprediction rate vs
/// the rate at which both primary and alternate miss, per depth.
pub fn fig8(data: &[BenchData]) -> String {
    let mut s = header("Figure 8: alternate trace prediction, 2^15 entries (mispredict %)");
    let jobs: Vec<(usize, usize)> = (0..data.len())
        .flat_map(|b| DEPTHS.map(move |depth| (b, depth)))
        .collect();
    let per_bench = DEPTHS.count() as u64;
    let results = fan_out("fig8", replayed(data, per_bench), &jobs, |&(b, depth)| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper_with_alternate(15, depth));
        let stats = evaluate(&mut p, &data[b].records);
        (
            stats.mispredict_pct(),
            stats.both_mispredict_pct(),
            stats.alternate_rescue_fraction(),
        )
    });
    let mut results = results.into_iter();
    for d in data {
        s += &format!("-- {}\n", d.name);
        s += &row(&[
            "depth".into(),
            "primary".into(),
            "both".into(),
            "rescued".into(),
        ]);
        s.push('\n');
        for depth in DEPTHS {
            let (primary, both, rescued) = results.next().expect("one result per (bench, depth)");
            s += &row(&[
                format!("{depth}"),
                pct(primary),
                pct(both),
                format!("{:.0}%", 100.0 * rescued),
            ]);
            s.push('\n');
        }
    }
    s
}

/// §5.5: the cost-reduced predictor (tables store the 16-bit hashed index
/// instead of the 36-bit identifier).
pub fn cost_reduced(data: &[BenchData]) -> String {
    let mut s = header("Sec. 5.5: cost-reduced predictor (hashed-target entries), 2^15, depth 7");
    let full_cfg = PredictorConfig::paper(15, 7);
    let hashed_cfg = PredictorConfig {
        stored_target: StoredTarget::Hashed,
        ..full_cfg
    };
    s += &format!(
        "entry: {} bits -> {} bits; table: {} KB -> {} KB\n",
        full_cfg.corr_entry_bits(),
        hashed_cfg.corr_entry_bits(),
        full_cfg.corr_table_bits() / 8192,
        hashed_cfg.corr_table_bits() / 8192,
    );
    s += &row(&["bench".into(), "full%".into(), "hashed%".into()]);
    s.push('\n');
    // One job per benchmark: the full-target and hashed-target sessions
    // replay the same stream, so they share one gathered sweep.
    let results = fan_out("cost_reduced", replayed(data, 2), data, |d| {
        let cfgs = [full_cfg, hashed_cfg];
        let stats =
            evaluate_batch_fresh(&[&d.records[..]; 2], |k| NextTracePredictor::new(cfgs[k]));
        (stats[0].mispredict_pct(), stats[1].mispredict_pct())
    });
    for (d, (fs, hs)) in data.iter().zip(results) {
        s += &row(&[d.name.into(), pct(fs), pct(hs)]);
        s.push('\n');
    }
    s
}

/// Ablations over the design choices DESIGN.md calls out: counter policy,
/// tag width, RHS depth, and secondary-table size, on the two
/// aliasing-stressed benchmarks (cc, go).
pub fn ablations(data: &[BenchData]) -> String {
    let stressed: Vec<&BenchData> = data
        .iter()
        .filter(|d| d.name == "cc" || d.name == "go")
        .collect();
    let base = PredictorConfig::paper(15, 7);
    let mut s = header("Ablations (2^15 entries, depth 7; cc and go)");

    // Declarative form of the five ablation blocks: (block title, rows of
    // (label, config)). Built once, fanned out as a flat row × benchmark
    // grid, then formatted serially in the same order.
    let mut blocks: Vec<(&str, Vec<(String, PredictorConfig)>)> = Vec::new();
    blocks.push((
        "-- correlating-counter policy",
        [
            ("inc1/dec2 (paper)", CounterSpec::PRIMARY),
            ("2-bit classic", CounterSpec::TWO_BIT),
            ("1-bit", CounterSpec::ONE_BIT),
        ]
        .map(|(label, ctr)| {
            (
                label.to_string(),
                PredictorConfig {
                    primary_counter: ctr,
                    ..base
                },
            )
        })
        .into(),
    ));
    blocks.push((
        "-- tag width (bits)",
        [0u32, 4, 8, 10, 16]
            .map(|tag_bits| {
                (
                    format!("tag={tag_bits}"),
                    PredictorConfig { tag_bits, ..base },
                )
            })
            .into(),
    ));
    blocks.push((
        "-- return history stack",
        [
            ("RHS off", None),
            ("RHS depth 1", Some(RhsConfig { max_depth: 1 })),
            ("RHS depth 4", Some(RhsConfig { max_depth: 4 })),
            ("RHS depth 16", Some(RhsConfig { max_depth: 16 })),
        ]
        .map(|(label, rhs)| (label.to_string(), PredictorConfig { rhs, ..base }))
        .into(),
    ));
    blocks.push((
        "-- secondary table size (log2 entries)",
        [8u32, 11, 14, 16]
            .map(|bits| {
                (
                    format!("secondary=2^{bits}"),
                    PredictorConfig {
                        secondary_index_bits: bits,
                        ..base
                    },
                )
            })
            .into(),
    ));
    blocks.push((
        "-- secondary counter decrement (4-bit counter)",
        [1u8, 4, 8, 15]
            .map(|dec| {
                (
                    format!("dec={dec}"),
                    PredictorConfig {
                        secondary_counter: CounterSpec {
                            bits: 4,
                            inc: 1,
                            dec,
                        },
                        ..base
                    },
                )
            })
            .into(),
    ));

    // Flat job grid: every (row config, stressed benchmark) pair.
    let jobs: Vec<(PredictorConfig, usize)> = blocks
        .iter()
        .flat_map(|(_, rows)| rows.iter().map(|(_, cfg)| *cfg))
        .flat_map(|cfg| (0..stressed.len()).map(move |b| (cfg, b)))
        .collect();
    let records: u64 = jobs
        .iter()
        .map(|&(_, b)| stressed[b].records.len() as u64)
        .sum();
    let results = fan_out("ablations", records, &jobs, |&(cfg, b)| {
        let mut p = NextTracePredictor::new(cfg);
        evaluate(&mut p, &stressed[b].records).mispredict_pct()
    });
    let mut results = results.into_iter();

    for (title, rows) in &blocks {
        s += title;
        s.push('\n');
        for (label, _) in rows {
            let cells: Vec<String> = (0..stressed.len())
                .map(|_| pct(results.next().expect("one result per (row, bench)")))
                .collect();
            s += &format!("{label:<20}{}\n", row(&cells));
        }
    }
    s
}

/// Extension: confidence estimation for trace predictions (resetting
/// counters, after the authors' MICRO-29 confidence paper) — coverage of
/// the high-confidence class and misprediction inside each class.
pub fn confidence(data: &[BenchData]) -> String {
    use ntp_core::{evaluate_with_confidence, ConfidenceConfig, ConfidenceEstimator};
    let mut s =
        header("Extension: prediction confidence (2^14 resetting counters, 2^15 predictor)");
    s += &row(&[
        "bench".into(),
        "cover%".into(),
        "hi-mis%".into(),
        "lo-mis%".into(),
        "caught%".into(),
    ]);
    s.push('\n');
    let results = fan_out("confidence", replayed(data, 1), data, |d| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
        let mut est = ConfidenceEstimator::new(ConfidenceConfig {
            threshold: 8,
            ..ConfidenceConfig::paper_like()
        });
        let stats = evaluate_with_confidence(&mut p, &mut est, &d.records);
        (
            stats.coverage(),
            stats.high_mispredict_pct(),
            stats.low_mispredict_pct(),
            stats.mispredictions_caught(),
        )
    });
    for (d, (cover, hi, lo, caught)) in data.iter().zip(results) {
        s += &row(&[
            d.name.into(),
            pct(100.0 * cover),
            pct(hi),
            pct(lo),
            pct(100.0 * caught),
        ]);
        s.push('\n');
    }
    s
}

/// The headline comparison the abstract quotes: mean misprediction of the
/// paper predictor vs the idealized sequential baseline.
pub fn headline(data: &[BenchData]) -> String {
    let mut s = header("Headline: paper predictor vs idealized sequential baseline");
    let jobs: Vec<(usize, usize)> = (0..data.len())
        .flat_map(|b| (0..TABLE_BITS.len()).map(move |k| (b, k)))
        .collect();
    let per_bench = TABLE_BITS.len() as u64;
    let results = fan_out("headline", replayed(data, per_bench), &jobs, |&(b, k)| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(TABLE_BITS[k], 7));
        evaluate(&mut p, &data[b].records).mispredict_pct()
    });
    let mut seq_mean = 0.0;
    let mut ours = vec![0.0f64; TABLE_BITS.len()];
    for d in data {
        seq_mean += d.seq_stats.trace_mispredict_pct();
    }
    for (&(_, k), m) in jobs.iter().zip(results) {
        ours[k] += m;
    }
    let n = data.len() as f64;
    seq_mean /= n;
    s += &format!("sequential (idealized) mean: {seq_mean:.2}%\n");
    for (k, bits) in TABLE_BITS.iter().enumerate() {
        let m = ours[k] / n;
        s += &format!(
            "2^{bits} path-based predictor:  {m:.2}%  ({:+.0}% relative)\n",
            100.0 * (m - seq_mean) / seq_mean
        );
    }
    s
}

/// Extension: the trace-selection study the paper defers (§4.2) — how
/// selection heuristics trade trace length against predictability. The
/// useful composite is *predicted fetch rate*: average trace length times
/// the fraction of traces correctly predicted.
pub fn selection_study() -> String {
    use crate::capture_with;
    use ntp_trace::TraceConfig;
    use ntp_workloads::by_name;

    let scale = crate::scale_from_env();
    let budget = crate::budget_from_env();
    let policies: [(&str, TraceConfig); 5] = [
        ("paper (16/6)", TraceConfig::default()),
        ("short (8/6)", TraceConfig::with_max_len(8)),
        (
            "few-branches (16/3)",
            TraceConfig {
                max_branches: 3,
                ..TraceConfig::default()
            },
        ),
        (
            "stop-at-calls",
            TraceConfig {
                stop_at_calls: true,
                ..TraceConfig::default()
            },
        ),
        (
            "stop-at-back-edges",
            TraceConfig {
                stop_at_loop_back_edges: true,
                ..TraceConfig::default()
            },
        ),
    ];

    let mut s = header("Extension: trace selection vs predictability (2^15, depth 7)");
    let names = ["cc", "go", "xlisp"];
    // One job per (benchmark, policy); each re-simulates under the policy
    // and replays the captured stream. Record counts are only known after
    // capture, so throughput is recorded from the jobs' own tallies.
    let jobs: Vec<(usize, usize)> = (0..names.len())
        .flat_map(|n| (0..policies.len()).map(move |p| (n, p)))
        .collect();
    let (results, stats) = map_ordered_stats(thread_count(), &jobs, |_, &(n, p)| {
        let w = by_name(names[n], scale);
        let d = capture_with(&w, budget, policies[p].1);
        let mut pred = NextTracePredictor::new(PredictorConfig::paper(15, 7));
        let pstats = evaluate(&mut pred, &d.records);
        let fetch_rate = d.trace_stats.avg_trace_len() * (1.0 - pstats.mispredict_pct() / 100.0);
        (
            d.trace_stats.avg_trace_len(),
            d.trace_stats.static_traces(),
            d.redundancy.duplication_factor(),
            pstats.mispredict_pct(),
            fetch_rate,
            d.records.len() as u64,
        )
    });
    record_section_throughput(ReplayThroughput {
        label: "selection_study".to_string(),
        records: results.iter().map(|r| r.5).sum(),
        wall: stats.wall,
        busy: stats.busy,
        threads: stats.threads,
    });
    let mut results = results.into_iter();
    for name in names {
        s += &format!("-- {name}\n");
        s += &format!(
            "{:<22}{:>9}{:>9}{:>7}{:>9}{:>11}\n",
            "policy", "avg-len", "static", "dup", "mis%", "fetch-rate"
        );
        for (label, _) in &policies {
            let (avg_len, static_traces, dup, mis, fetch_rate, _) =
                results.next().expect("one result per (bench, policy)");
            s += &format!(
                "{label:<22}{avg_len:>9.1}{static_traces:>9}{dup:>7.2}{mis:>9.2}{fetch_rate:>11.2}\n",
            );
        }
    }
    s
}

/// Extension: trace-processor throughput (the consumer architecture) —
/// IPC with 4 PEs at depth 0 vs depth 7, per benchmark.
pub fn trace_processor(data: &[BenchData]) -> String {
    use ntp_engine::{TraceProcessor, TraceProcessorConfig};
    let mut s = header("Extension: trace-processor throughput (4 PEs x 4-wide, 2^15 predictor)");
    s += &row(&[
        "bench".into(),
        "d0 IPC".into(),
        "d7 IPC".into(),
        "d0 mis%".into(),
        "d7 mis%".into(),
    ]);
    s.push('\n');
    let results = fan_out("trace_processor", replayed(data, 2), data, |d| {
        [0usize, 7].map(|depth| {
            let mut tp = TraceProcessor::new(
                NextTracePredictor::new(PredictorConfig::paper(15, depth)),
                TraceProcessorConfig::default(),
            );
            let stats = tp.run(&d.records);
            (stats.ipc(), stats.mispredict_pct())
        })
    });
    for (d, depth_stats) in data.iter().zip(results) {
        let mut cells = vec![d.name.to_string()];
        let mut mis = Vec::new();
        for (ipc, mispct) in depth_stats {
            cells.push(format!("{ipc:.2}"));
            mis.push(pct(mispct));
        }
        cells.extend(mis);
        s += &row(&cells);
        s.push('\n');
    }
    s
}
