//! # ntp-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `src/bin/`), all built on
//! [`capture`]: a single functional-simulation pass per benchmark that
//! records the compact trace stream and runs every streaming baseline, so
//! that dozens of predictor configurations can replay the same stream
//! without re-simulating.
//!
//! Environment knobs honoured by all binaries:
//!
//! * `NTP_SCALE` — `tiny` / `default` / `full` workload scale;
//! * `NTP_INSTR_BUDGET` — hard cap on simulated instructions per benchmark;
//! * `NTP_THREADS` — worker threads for capture and replay fan-out
//!   (default: available parallelism; `1` forces the serial path). Output
//!   is byte-identical at any thread count.

#![warn(missing_docs)]

pub mod exp;
pub mod report;

use ntp_baselines::{
    MultiBranchStats, MultiGAg, SequentialStats, SequentialTracePredictor, TraceGshare,
};
use ntp_telemetry::{PhaseTimes, ReplayThroughput, ScopeTimer};
use ntp_trace::{ControlMix, RedundancyStats, TraceBuilder, TraceConfig, TraceRecord, TraceStats};
use ntp_workloads::{suite, ScalePreset, Workload};
use std::sync::Mutex;

/// Everything one simulation pass learns about a benchmark.
pub struct BenchData {
    /// Benchmark name (paper's naming).
    pub name: &'static str,
    /// What it stands in for.
    pub analog_of: &'static str,
    /// Compact trace stream for predictor replay.
    pub records: Vec<TraceRecord>,
    /// Trace-selection statistics (Table 1).
    pub trace_stats: TraceStats,
    /// Trace-cache duplication accounting.
    pub redundancy: RedundancyStats,
    /// Idealized sequential baseline results (Table 2).
    pub seq_stats: SequentialStats,
    /// Single-access multiple-branch baseline results (Patel-style,
    /// PC-hashed).
    pub mb_stats: MultiBranchStats,
    /// Multiported-GAg baseline results (Yeh/Rotenberg-style, history
    /// only).
    pub gag_stats: MultiBranchStats,
    /// Dynamic instruction mix.
    pub mix: ControlMix,
    /// Instructions simulated.
    pub icount: u64,
    /// Wall-clock phase timings of the capture pass (`simulate`).
    pub phases: PhaseTimes,
}

/// Runs one benchmark once with the paper's selection policy.
///
/// # Panics
///
/// Panics on simulation faults (a workload bug).
pub fn capture(workload: &Workload, budget: u64) -> BenchData {
    capture_with(workload, budget, TraceConfig::default())
}

/// Runs one benchmark once under an explicit trace-selection policy,
/// collecting traces and all streaming baselines.
///
/// # Panics
///
/// Panics on simulation faults (a workload bug).
pub fn capture_with(workload: &Workload, budget: u64, cfg: TraceConfig) -> BenchData {
    let mut machine = workload.machine();
    let mut builder = TraceBuilder::new(cfg);
    let mut records = Vec::new();
    let mut trace_stats = TraceStats::new();
    let mut redundancy = RedundancyStats::new();
    let mut seq = SequentialTracePredictor::paper();
    let mut mb = TraceGshare::new(14);
    let mut gag = MultiGAg::new(14);
    let mut mix = ControlMix::new();
    let mut phases = PhaseTimes::new();

    {
        let _t = ScopeTimer::new(&mut phases, "simulate");
        machine
            .run_with(budget, |step| {
                mix.record(step);
                if let Some(trace) = builder.push(step) {
                    records.push(TraceRecord::from(&trace));
                    trace_stats.record(&trace);
                    redundancy.record(&trace);
                    seq.observe(&trace);
                    mb.observe(&trace);
                    gag.observe(&trace);
                }
            })
            .expect("workload executes without faults");
        if let Some(trace) = builder.flush() {
            records.push(TraceRecord::from(&trace));
            trace_stats.record(&trace);
            redundancy.record(&trace);
            seq.observe(&trace);
            mb.observe(&trace);
            gag.observe(&trace);
        }
    }

    BenchData {
        name: workload.name,
        analog_of: workload.analog_of,
        records,
        trace_stats,
        redundancy,
        seq_stats: seq.stats().clone(),
        mb_stats: mb.stats().clone(),
        gag_stats: gag.stats().clone(),
        mix,
        icount: machine.icount(),
        phases,
    }
}

/// Reads `NTP_SCALE` (default: `default`).
///
/// # Panics
///
/// Panics on an unrecognized value.
pub fn scale_from_env() -> ScalePreset {
    match std::env::var("NTP_SCALE").as_deref() {
        Ok("tiny") => ScalePreset::Tiny,
        Ok("full") => ScalePreset::Full,
        Ok("default") | Err(_) => ScalePreset::Default,
        Ok(other) => panic!("NTP_SCALE must be tiny|default|full, got `{other}`"),
    }
}

/// Reads `NTP_INSTR_BUDGET` (default: 200M, far above any preset's needs).
///
/// # Panics
///
/// Panics with a clear message on an unparsable value (a typo'd budget
/// must never silently fall back to the default).
pub fn budget_from_env() -> u64 {
    ntp_runner::parse_env("NTP_INSTR_BUDGET").unwrap_or(200_000_000)
}

/// Per-section replay-throughput samples recorded by [`capture_suite`] and
/// the parallelised sections in [`exp`] (all wall-clock derived, hence
/// volatile).
static SECTION_THROUGHPUT: Mutex<Vec<ReplayThroughput>> = Mutex::new(Vec::new());

/// Records one section's replay throughput for later reporting.
pub(crate) fn record_section_throughput(t: ReplayThroughput) {
    SECTION_THROUGHPUT
        .lock()
        .expect("throughput registry lock")
        .push(t);
}

/// Snapshot of every per-section throughput sample recorded so far in this
/// process (capture pass plus each experiment section), in recording
/// order. Wall-clock derived, so reports must keep it under a volatile
/// key.
pub fn section_throughput() -> Vec<ReplayThroughput> {
    SECTION_THROUGHPUT
        .lock()
        .expect("throughput registry lock")
        .clone()
}

/// Captures the whole six-benchmark suite at the environment-selected
/// scale, fanning benchmarks out over `NTP_THREADS` workers.
///
/// Worker progress goes through the ordered [`ntp_runner::progress`]
/// reporter: `[capture]` start lines print as workers claim benchmarks
/// (whole lines, never interleaved), and the `[phase]` summaries are
/// emitted strictly in suite order, so multi-run logs stay comparable.
/// The returned data is in suite order regardless of thread count.
pub fn capture_suite() -> Vec<BenchData> {
    let scale = scale_from_env();
    let budget = budget_from_env();
    let workloads = suite(scale);
    let reporter = ntp_runner::progress();
    reporter.reset_order();
    let threads = ntp_runner::thread_count();
    let (data, stats) = ntp_runner::map_ordered_stats(threads, &workloads, |i, w| {
        reporter.line(&format!("[capture] simulating {} …", w.name));
        let d = capture(w, budget);
        reporter.submit(
            i,
            format!("[phase] {}: {}", d.name, d.phases.summary_line()),
        );
        d
    });
    let instrs: u64 = data.iter().map(|d| d.icount).sum();
    let sample = ReplayThroughput {
        label: "capture".to_string(),
        records: data.iter().map(|d| d.records.len() as u64).sum(),
        wall: stats.wall,
        busy: stats.busy,
        threads: stats.threads,
    };
    reporter.line(&format!(
        "[capture] suite done: {:.1} Minstr in {:.2} s ({:.2}x over serial, {} thread{})",
        instrs as f64 / 1e6,
        stats.wall.as_secs_f64(),
        stats.speedup(),
        stats.threads,
        if stats.threads == 1 { "" } else { "s" },
    ));
    record_section_throughput(sample);
    data
}

/// Prints a row of cells: first column left-aligned 10 wide, the rest
/// right-aligned 9 wide.
pub fn row(cells: &[String]) -> String {
    let mut line = String::new();
    for (k, c) in cells.iter().enumerate() {
        if k == 0 {
            line.push_str(&format!("{c:<10}"));
        } else {
            line.push_str(&format!("{c:>9}"));
        }
    }
    line
}

/// Formats a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_consistent_counts() {
        let w = ntp_workloads::compress::build(1);
        let d = capture(&w, 50_000_000);
        assert_eq!(d.trace_stats.traces(), d.records.len() as u64);
        assert_eq!(d.trace_stats.instrs(), d.icount);
        assert_eq!(d.seq_stats.traces, d.trace_stats.traces());
        assert!(d.trace_stats.avg_trace_len() > 4.0);
        assert!(d.seq_stats.branches > 0);
    }

    #[test]
    fn row_layout_is_stable() {
        let r = row(&["name".into(), "1.00".into(), "2.00".into()]);
        assert!(r.starts_with("name      "));
        assert!(r.ends_with("     2.00"));
    }
}
