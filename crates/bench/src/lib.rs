//! # ntp-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see `src/bin/`), all built on
//! [`capture`]: a single functional-simulation pass per benchmark that
//! records the compact trace stream and runs every streaming baseline, so
//! that dozens of predictor configurations can replay the same stream
//! without re-simulating.
//!
//! Environment knobs honoured by all binaries:
//!
//! * `NTP_SCALE` — `tiny` / `default` / `full` workload scale;
//! * `NTP_INSTR_BUDGET` — hard cap on simulated instructions per benchmark;
//! * `NTP_THREADS` — worker threads for capture and replay fan-out
//!   (default: available parallelism; `1` forces the serial path). Output
//!   is byte-identical at any thread count;
//! * `NTP_TRACE_CACHE` — persistent on-disk trace-capture cache (see
//!   [`ntp_tracefile`]): `1` caches under `.ntp-cache/`, any other
//!   non-empty value is the cache directory. Warm runs skip the
//!   `simulate` phase entirely and are byte-identical on stdout.

#![warn(missing_docs)]

pub mod exp;
pub mod report;

use ntp_baselines::{
    MultiBranchStats, MultiGAg, SequentialStats, SequentialTracePredictor, TraceGshare,
};
use ntp_telemetry::{PhaseTimes, ReplayThroughput, ScopeTimer};
use ntp_trace::{ControlMix, RedundancyStats, TraceBuilder, TraceConfig, TraceRecord, TraceStats};
use ntp_tracefile::{format as ntc, CaptureArtifact, Fingerprint, TraceFileError};
use ntp_workloads::{suite, ScalePreset, Workload};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Everything one simulation pass learns about a benchmark.
pub struct BenchData {
    /// Benchmark name (paper's naming).
    pub name: &'static str,
    /// What it stands in for.
    pub analog_of: &'static str,
    /// Compact trace stream for predictor replay.
    pub records: Vec<TraceRecord>,
    /// Trace-selection statistics (Table 1).
    pub trace_stats: TraceStats,
    /// Trace-cache duplication accounting.
    pub redundancy: RedundancyStats,
    /// Idealized sequential baseline results (Table 2).
    pub seq_stats: SequentialStats,
    /// Single-access multiple-branch baseline results (Patel-style,
    /// PC-hashed).
    pub mb_stats: MultiBranchStats,
    /// Multiported-GAg baseline results (Yeh/Rotenberg-style, history
    /// only).
    pub gag_stats: MultiBranchStats,
    /// Dynamic instruction mix.
    pub mix: ControlMix,
    /// Instructions simulated.
    pub icount: u64,
    /// Wall-clock phase timings of the capture pass (`simulate`).
    pub phases: PhaseTimes,
}

/// Runs one benchmark once with the paper's selection policy.
///
/// # Panics
///
/// Panics on simulation faults (a workload bug).
pub fn capture(workload: &Workload, budget: u64) -> BenchData {
    capture_with(workload, budget, TraceConfig::default())
}

/// Runs one benchmark once under an explicit trace-selection policy,
/// collecting traces and all streaming baselines.
///
/// Honours the `NTP_TRACE_CACHE` knob: when the cache is enabled and
/// holds a valid artifact for this exact configuration, the simulation
/// pass is skipped entirely and the artifact is replayed from disk (see
/// [`capture_with_cache`]).
///
/// # Panics
///
/// Panics on simulation faults (a workload bug).
pub fn capture_with(workload: &Workload, budget: u64, cfg: TraceConfig) -> BenchData {
    let dir = ntp_tracefile::cache_dir_from_env();
    capture_with_cache(workload, budget, cfg, dir.as_deref())
}

/// The cache key for one `(workload, budget, policy)` capture
/// configuration. Public so `ntp capture --verify` can audit cache files
/// against the exact fingerprints the bench harness would use.
pub fn capture_fingerprint(workload: &Workload, budget: u64, cfg: &TraceConfig) -> Fingerprint {
    Fingerprint::new(
        workload.name,
        workload.analog_of,
        budget,
        cfg,
        &workload.program.to_image(),
    )
}

/// Like [`capture_with`], but with an explicit cache directory (`None`
/// disables the cache). On a valid cache hit the `simulate` phase is
/// replaced by a `cache_load` phase and the artifact is decoded from
/// disk; on a miss (no file) or an invalid file (stale fingerprint,
/// version skew, corruption — warned to stderr) the full capture pass
/// runs and, on success, the artifact is written back atomically.
///
/// # Panics
///
/// Panics on simulation faults (a workload bug).
pub fn capture_with_cache(
    workload: &Workload,
    budget: u64,
    cfg: TraceConfig,
    cache: Option<&Path>,
) -> BenchData {
    let Some(dir) = cache else {
        return capture_cold(workload, budget, cfg);
    };
    let fp = capture_fingerprint(workload, budget, &cfg);
    let path = dir.join(fp.file_name());
    let start = Instant::now();
    match ntc::read_file(&path, &fp) {
        Ok((artifact, bytes)) => {
            let elapsed = start.elapsed();
            ntp_tracefile::counters::record_hit(bytes, elapsed);
            let mut phases = PhaseTimes::new();
            phases.add("cache_load", elapsed);
            return bench_data_from_artifact(workload, artifact, phases);
        }
        Err(TraceFileError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            ntp_tracefile::counters::record_miss();
        }
        Err(e) => {
            ntp_tracefile::counters::record_invalid();
            ntp_runner::progress().line(&format!(
                "[cache] {}: refused {} — re-capturing ({e})",
                workload.name,
                path.display()
            ));
        }
    }
    let data = capture_cold(workload, budget, cfg);
    let artifact = artifact_from_bench_data(&data);
    let store = Instant::now();
    match ntc::write_file(&path, &fp, &artifact) {
        Ok(bytes) => ntp_tracefile::counters::record_store(bytes, store.elapsed()),
        Err(e) => ntp_runner::progress().line(&format!(
            "[cache] {}: could not write {} ({e}); continuing uncached",
            workload.name,
            path.display()
        )),
    }
    data
}

/// Rehydrates a [`BenchData`] from a decoded cache artifact. The static
/// name/analog strings come from the workload (the fingerprint already
/// guarantees they match the artifact).
fn bench_data_from_artifact(
    workload: &Workload,
    artifact: CaptureArtifact,
    phases: PhaseTimes,
) -> BenchData {
    BenchData {
        name: workload.name,
        analog_of: workload.analog_of,
        records: artifact.records,
        trace_stats: TraceStats::from_raw(artifact.trace_stats),
        redundancy: RedundancyStats::from_raw(artifact.redundancy),
        seq_stats: artifact.seq_stats,
        mb_stats: artifact.mb_stats,
        gag_stats: artifact.gag_stats,
        mix: artifact.mix,
        icount: artifact.icount,
        phases,
    }
}

/// The persisted form of one capture pass (everything except the
/// wall-clock phase timings, which are volatile by definition).
fn artifact_from_bench_data(d: &BenchData) -> CaptureArtifact {
    CaptureArtifact {
        name: d.name.to_string(),
        analog_of: d.analog_of.to_string(),
        icount: d.icount,
        records: d.records.clone(),
        trace_stats: d.trace_stats.to_raw(),
        redundancy: d.redundancy.to_raw(),
        seq_stats: d.seq_stats.clone(),
        mb_stats: d.mb_stats.clone(),
        gag_stats: d.gag_stats.clone(),
        mix: d.mix.clone(),
    }
}

/// A conservative pre-reservation for the trace-record stream: the
/// paper's traces average well above 8 instructions, so `budget / 8`
/// never over-reserves by more than ~2x, clamped to keep tiny budgets
/// cheap and absurd budgets bounded (the Vec still grows if exceeded).
fn estimated_record_capacity(budget: u64) -> usize {
    usize::try_from(budget / 8)
        .unwrap_or(usize::MAX)
        .clamp(64, 1 << 20)
}

/// The uncached capture pass: one full functional simulation.
fn capture_cold(workload: &Workload, budget: u64, cfg: TraceConfig) -> BenchData {
    let mut machine = workload.machine();
    let mut builder = TraceBuilder::new(cfg);
    let mut records = Vec::with_capacity(estimated_record_capacity(budget));
    let mut trace_stats = TraceStats::new();
    let mut redundancy = RedundancyStats::new();
    let mut seq = SequentialTracePredictor::paper();
    let mut mb = TraceGshare::new(14);
    let mut gag = MultiGAg::new(14);
    let mut mix = ControlMix::new();
    let mut phases = PhaseTimes::new();

    {
        let _t = ScopeTimer::new(&mut phases, "simulate");
        machine
            .run_with(budget, |step| {
                mix.record(step);
                if let Some(trace) = builder.push(step) {
                    records.push(TraceRecord::from(&trace));
                    trace_stats.record(&trace);
                    redundancy.record(&trace);
                    seq.observe(&trace);
                    mb.observe(&trace);
                    gag.observe(&trace);
                }
            })
            .expect("workload executes without faults");
        if let Some(trace) = builder.flush() {
            records.push(TraceRecord::from(&trace));
            trace_stats.record(&trace);
            redundancy.record(&trace);
            seq.observe(&trace);
            mb.observe(&trace);
            gag.observe(&trace);
        }
    }

    BenchData {
        name: workload.name,
        analog_of: workload.analog_of,
        records,
        trace_stats,
        redundancy,
        seq_stats: seq.stats().clone(),
        mb_stats: mb.stats().clone(),
        gag_stats: gag.stats().clone(),
        mix,
        icount: machine.icount(),
        phases,
    }
}

/// Reads `NTP_SCALE` (default: `default`).
///
/// # Panics
///
/// Panics on an unrecognized value.
pub fn scale_from_env() -> ScalePreset {
    match std::env::var("NTP_SCALE").as_deref() {
        Ok("tiny") => ScalePreset::Tiny,
        Ok("full") => ScalePreset::Full,
        Ok("default") | Err(_) => ScalePreset::Default,
        Ok(other) => panic!("NTP_SCALE must be tiny|default|full, got `{other}`"),
    }
}

/// Reads `NTP_INSTR_BUDGET` (default: 200M, far above any preset's needs).
///
/// # Panics
///
/// Panics with a clear message on an unparsable value (a typo'd budget
/// must never silently fall back to the default).
pub fn budget_from_env() -> u64 {
    ntp_runner::parse_env("NTP_INSTR_BUDGET").unwrap_or(200_000_000)
}

/// Per-section replay-throughput samples recorded by [`capture_suite`] and
/// the parallelised sections in [`exp`] (all wall-clock derived, hence
/// volatile).
static SECTION_THROUGHPUT: Mutex<Vec<ReplayThroughput>> = Mutex::new(Vec::new());

/// Records one section's replay throughput for later reporting.
pub(crate) fn record_section_throughput(t: ReplayThroughput) {
    SECTION_THROUGHPUT
        .lock()
        .expect("throughput registry lock")
        .push(t);
}

/// Snapshot of every per-section throughput sample recorded so far in this
/// process (capture pass plus each experiment section), in recording
/// order. Wall-clock derived, so reports must keep it under a volatile
/// key.
pub fn section_throughput() -> Vec<ReplayThroughput> {
    SECTION_THROUGHPUT
        .lock()
        .expect("throughput registry lock")
        .clone()
}

/// Clears the per-section throughput registry. [`capture_suite`] calls
/// this at suite start so a process that captures more than once (tests,
/// long-lived drivers) reports only the samples of the current run
/// instead of accumulating across runs forever.
pub fn reset_section_throughput() {
    SECTION_THROUGHPUT
        .lock()
        .expect("throughput registry lock")
        .clear();
}

/// Captures the whole six-benchmark suite at the environment-selected
/// scale, fanning benchmarks out over `NTP_THREADS` workers.
///
/// Worker progress goes through the ordered [`ntp_runner::progress`]
/// reporter: `[capture]` start lines print as workers claim benchmarks
/// (whole lines, never interleaved), and the `[phase]` summaries are
/// emitted strictly in suite order, so multi-run logs stay comparable.
/// The returned data is in suite order regardless of thread count.
///
/// Resets the per-section throughput registry and the trace-cache
/// counters at suite start, so every report describes exactly one run.
pub fn capture_suite() -> Vec<BenchData> {
    let dir = ntp_tracefile::cache_dir_from_env();
    capture_suite_in(dir.as_deref())
}

/// Like [`capture_suite`], but with an explicit cache directory (`None`
/// disables the cache regardless of the environment). Used by the
/// `ntp capture` CLI subcommand to pre-warm an explicit directory.
pub fn capture_suite_in(cache: Option<&Path>) -> Vec<BenchData> {
    reset_section_throughput();
    ntp_tracefile::reset_counters();
    let scale = scale_from_env();
    let budget = budget_from_env();
    let workloads = suite(scale);
    let reporter = ntp_runner::progress();
    reporter.reset_order();
    let threads = ntp_runner::thread_count();
    let (data, stats) = ntp_runner::map_ordered_stats(threads, &workloads, |i, w| {
        reporter.line(&format!("[capture] simulating {} …", w.name));
        let d = capture_with_cache(w, budget, TraceConfig::default(), cache);
        reporter.submit(
            i,
            format!("[phase] {}: {}", d.name, d.phases.summary_line()),
        );
        d
    });
    let instrs: u64 = data.iter().map(|d| d.icount).sum();
    let sample = ReplayThroughput {
        label: "capture".to_string(),
        records: data.iter().map(|d| d.records.len() as u64).sum(),
        wall: stats.wall,
        busy: stats.busy,
        threads: stats.threads,
    };
    reporter.line(&format!(
        "[capture] suite done: {:.1} Minstr in {:.2} s ({:.2}x over serial, {} thread{})",
        instrs as f64 / 1e6,
        stats.wall.as_secs_f64(),
        stats.speedup(),
        stats.threads,
        if stats.threads == 1 { "" } else { "s" },
    ));
    record_section_throughput(sample);
    let cache_counters = ntp_tracefile::counters();
    if !cache_counters.is_empty() {
        reporter.line(&format!("[cache] {}", cache_counters.summary_line()));
    }
    data
}

/// Prints a row of cells: first column left-aligned 10 wide, the rest
/// right-aligned 9 wide.
pub fn row(cells: &[String]) -> String {
    let mut line = String::new();
    for (k, c) in cells.iter().enumerate() {
        if k == 0 {
            line.push_str(&format!("{c:<10}"));
        } else {
            line.push_str(&format!("{c:>9}"));
        }
    }
    line
}

/// Formats a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_consistent_counts() {
        let w = ntp_workloads::compress::build(1);
        let d = capture(&w, 50_000_000);
        assert_eq!(d.trace_stats.traces(), d.records.len() as u64);
        assert_eq!(d.trace_stats.instrs(), d.icount);
        assert_eq!(d.seq_stats.traces, d.trace_stats.traces());
        assert!(d.trace_stats.avg_trace_len() > 4.0);
        assert!(d.seq_stats.branches > 0);
    }

    #[test]
    fn row_layout_is_stable() {
        let r = row(&["name".into(), "1.00".into(), "2.00".into()]);
        assert!(r.starts_with("name      "));
        assert!(r.ends_with("     2.00"));
    }

    #[test]
    fn record_capacity_estimate_is_clamped() {
        assert_eq!(estimated_record_capacity(0), 64);
        assert_eq!(estimated_record_capacity(8_000), 1_000);
        assert_eq!(estimated_record_capacity(u64::MAX), 1 << 20);
    }

    #[test]
    fn reset_clears_section_throughput() {
        record_section_throughput(ReplayThroughput {
            label: "test".to_string(),
            records: 1,
            wall: std::time::Duration::from_millis(1),
            busy: std::time::Duration::from_millis(1),
            threads: 1,
        });
        assert!(!section_throughput().is_empty());
        reset_section_throughput();
        assert!(section_throughput().is_empty());
    }

    /// Warm loads must reproduce every field the cold pass computed, skip
    /// the `simulate` phase, and a corrupted file must fall back to a
    /// (correct) re-capture.
    #[test]
    fn cache_warm_load_matches_cold_capture() {
        let dir = std::env::temp_dir().join(format!(
            "ntp-bench-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let w = ntp_workloads::compress::build(1);
        let budget = 2_000_000;
        let cfg = TraceConfig::default();

        let cold = capture_with_cache(&w, budget, cfg, Some(&dir));
        assert!(cold.phases.get("simulate") > std::time::Duration::ZERO);

        let warm = capture_with_cache(&w, budget, cfg, Some(&dir));
        assert_eq!(warm.phases.get("simulate"), std::time::Duration::ZERO);
        assert!(warm.phases.get("cache_load") > std::time::Duration::ZERO);
        assert_eq!(warm.records, cold.records);
        assert_eq!(warm.icount, cold.icount);
        assert_eq!(warm.trace_stats.to_raw(), cold.trace_stats.to_raw());
        assert_eq!(warm.redundancy.to_raw(), cold.redundancy.to_raw());
        assert_eq!(warm.seq_stats, cold.seq_stats);
        assert_eq!(warm.mb_stats, cold.mb_stats);
        assert_eq!(warm.gag_stats, cold.gag_stats);
        assert_eq!(warm.mix, cold.mix);

        // A different budget is a different fingerprint: its own file.
        let fp_a = capture_fingerprint(&w, budget, &cfg);
        let fp_b = capture_fingerprint(&w, budget + 1, &cfg);
        assert_ne!(fp_a.file_name(), fp_b.file_name());

        // Corrupt the stored file: the loader must refuse it and the
        // fallback re-capture must still match the cold pass.
        let path = dir.join(fp_a.file_name());
        let mut bytes = std::fs::read(&path).expect("cache file exists");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite corrupted file");
        let refetched = capture_with_cache(&w, budget, cfg, Some(&dir));
        assert!(refetched.phases.get("simulate") > std::time::Duration::ZERO);
        assert_eq!(refetched.records, cold.records);

        // The fallback rewrote a valid file behind itself.
        let rewarm = capture_with_cache(&w, budget, cfg, Some(&dir));
        assert_eq!(rewarm.records, cold.records);
        assert!(rewarm.phases.get("cache_load") > std::time::Duration::ZERO);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
