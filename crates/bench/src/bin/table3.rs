//! Prints the DOLC index-generation configurations (Table 3).

fn main() {
    print!("{}", ntp_bench::exp::table3());
}
