//! Prints the DOLC index-generation configurations (Table 3).

fn main() {
    let text = ntp_bench::exp::table3();
    print!("{text}");
    ntp_bench::report::emit_text_from_cli("table3", &text);
}
