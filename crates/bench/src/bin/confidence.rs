//! Regenerates the confidence-estimation extension section.

fn main() {
    let data = ntp_bench::capture_suite();
    print!("{}", ntp_bench::exp::confidence(&data));
    ntp_bench::report::emit_from_cli(&data);
}
