//! Regenerates the trace-selection-policy study (an extension; §4.2 of the
//! paper explicitly defers this question).

fn main() {
    print!("{}", ntp_bench::exp::selection_study());
}
