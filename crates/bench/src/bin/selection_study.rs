//! Regenerates the trace-selection-policy study (an extension; §4.2 of the
//! paper explicitly defers this question).

fn main() {
    let text = ntp_bench::exp::selection_study();
    print!("{text}");
    ntp_bench::report::emit_text_from_cli("selection_study", &text);
}
