//! Regenerates one section of the paper's evaluation. See `experiments`
//! for all sections at once.

fn main() {
    let data = ntp_bench::capture_suite();
    print!("{}", ntp_bench::exp::cost_reduced(&data));
    ntp_bench::report::emit_from_cli(&data);
}
