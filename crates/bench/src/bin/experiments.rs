//! Runs every experiment of the paper in order, printing all tables and
//! figures. `tee` this into a file to refresh EXPERIMENTS.md data:
//!
//! ```text
//! NTP_SCALE=default cargo run --release -p ntp-bench --bin experiments
//! ```
//!
//! Pass `--json <dir>` (or set `NTP_JSON=1`) to also write one
//! machine-readable `BENCH_<name>.json` per benchmark — see
//! OBSERVABILITY.md for the schema.

use ntp_bench::exp;

fn main() {
    let data = ntp_bench::capture_suite();
    print!("{}", exp::table1(&data));
    print!("{}", exp::table2(&data));
    print!("{}", exp::table3());
    print!("{}", exp::fig6(&data));
    print!("{}", exp::fig7(&data));
    print!("{}", exp::table4(&data));
    print!("{}", exp::fig8(&data));
    print!("{}", exp::cost_reduced(&data));
    print!("{}", exp::ablations(&data));
    print!("{}", exp::confidence(&data));
    print!("{}", exp::selection_study());
    print!("{}", exp::trace_processor(&data));
    print!("{}", exp::headline(&data));
    // Per-section replay throughput (stderr: wall-clock derived, so it
    // must stay out of the deterministic stdout stream).
    for t in ntp_bench::section_throughput() {
        eprintln!("[throughput] {}", t.summary_line());
    }
    ntp_bench::report::emit_from_cli(&data);
}
