//! Regenerates the trace-processor throughput extension section.

fn main() {
    let data = ntp_bench::capture_suite();
    print!("{}", ntp_bench::exp::trace_processor(&data));
    ntp_bench::report::emit_from_cli(&data);
}
