//! Reports per-round instruction costs of each workload (used to calibrate
//! the scale presets).

use std::fmt::Write as _;

fn main() {
    let mut text = String::new();
    for name in ["compress", "cc", "go", "jpeg", "m88ksim", "xlisp"] {
        let w = ntp_workloads::by_name(name, ntp_workloads::ScalePreset::Tiny);
        let mut m = w.machine();
        m.run(2_000_000_000).unwrap();
        let rounds = match name {
            "jpeg" => 4,
            _ => 2,
        };
        writeln!(
            text,
            "{name}: total {} instrs, {} per round, static {} instrs",
            m.icount(),
            m.icount() / rounds,
            w.program.len()
        )
        .unwrap();
    }
    print!("{text}");
    ntp_bench::report::emit_text_from_cli("measure", &text);
}
