//! `BENCH_<name>.json` assembly and the shared `--json` pass every
//! experiment binary runs after printing its text section.
//!
//! One report per benchmark bundles the capture-pass statistics (Tables 1
//! and 2 inputs), a full predictor replay at the headline design point
//! (accuracy, aliasing, occupancy, misprediction-streak histogram), the
//! delayed-update engine and fetch-engine runs, a metrics registry with
//! trace-shape histograms, and wall-clock phase timings. The schema is
//! documented in OBSERVABILITY.md at the repo root.
//!
//! Determinism: everything except the `"phases_ms"` and `"throughput"`
//! sections (and the manifest's volatile fields) is a pure function of the
//! captured records, so two runs of the same workload agree byte-for-byte
//! after [`Report::strip_volatile`].

use crate::BenchData;
use ntp_core::{evaluate_with_sink, predictor_section, NextTracePredictor, PredictorConfig};
use ntp_engine::{DelayedUpdateEngine, EngineConfig, FetchConfig, FetchEngine};
use ntp_telemetry::{
    per_second, Json, MetricsRegistry, NullSink, Report, RunManifest, ScopeTimer, ToJson,
};
use std::path::{Path, PathBuf};

/// The design point every report replays: `paper(15, 7)` — the
/// 2^15-entry, depth-7 configuration the paper's headline numbers use.
pub const REPORT_INDEX_BITS: u32 = 15;
/// History depth of the report's design point.
pub const REPORT_DEPTH: usize = 7;

/// Builds the full telemetry report for one captured benchmark.
pub fn bench_report(d: &BenchData) -> Report {
    let scale = crate::scale_from_env();
    let budget = crate::budget_from_env();
    let predictor_desc = format!("paper({REPORT_INDEX_BITS},{REPORT_DEPTH})");
    let mut report = Report::new(RunManifest::capture(
        d.name,
        scale.name(),
        budget,
        &predictor_desc,
    ));
    report.phases_mut().merge(&d.phases);

    // Capture-pass identity and Table-1/Table-2 inputs.
    report.section(
        "capture",
        Json::object()
            .with("analog_of", Json::Str(d.analog_of.to_string()))
            .with("icount", Json::U64(d.icount))
            .with("records", Json::U64(d.records.len() as u64)),
    );
    report.section("trace_stats", d.trace_stats.to_json());
    report.section("redundancy", d.redundancy.to_json());
    report.section("mix", d.mix.to_json());
    report.section(
        "baselines",
        Json::object()
            .with("sequential", d.seq_stats.to_json())
            .with("multibranch", d.mb_stats.to_json())
            .with("gag", d.gag_stats.to_json()),
    );

    // Trace-shape histograms through the metrics registry.
    let mut metrics = MetricsRegistry::new();
    let traces = metrics.counter("trace.count");
    let lens = metrics.histogram("trace.len");
    let branches = metrics.histogram("trace.branches");
    for r in &d.records {
        metrics.inc(traces);
        metrics.observe(lens, r.len as u64);
        metrics.observe(branches, r.branch_count as u64);
    }

    // Replay the headline predictor, timing the phase and collecting the
    // misprediction-streak histogram.
    let cfg = PredictorConfig::try_paper(REPORT_INDEX_BITS, REPORT_DEPTH).unwrap_or_else(|e| {
        panic!(
            "bench: headline design point paper({REPORT_INDEX_BITS},{REPORT_DEPTH}) rejected: {e}"
        )
    });
    let mut p = NextTracePredictor::try_new(cfg)
        .unwrap_or_else(|e| panic!("bench: headline predictor config rejected: {e}"));
    let (stats, streaks) = {
        let _t = ScopeTimer::new(report.phases_mut(), "replay");
        evaluate_with_sink(&mut p, &d.records, &mut NullSink)
    };
    report.section("predictor", predictor_section(&p, &stats));
    report.section("mispredict_streaks", streaks.to_json());

    // Delayed-update engine (Table 4) and fetch engine, each timed.
    let engine_stats = {
        let _t = ScopeTimer::new(report.phases_mut(), "engine");
        DelayedUpdateEngine::new(NextTracePredictor::new(cfg), EngineConfig::default())
            .run(&d.records)
    };
    report.section("engine", engine_stats.to_json());

    let (fetch_stats, cache_stats) = {
        let _t = ScopeTimer::new(report.phases_mut(), "fetch");
        let mut fe = FetchEngine::new(NextTracePredictor::new(cfg), FetchConfig::default());
        let fs = fe.run(&d.records);
        let cs = fe.cache().stats();
        (fs, cs)
    };
    report.section(
        "fetch",
        Json::object()
            .with("stats", fetch_stats.to_json())
            .with("cache", cache_stats.to_json()),
    );

    report.section("metrics", metrics.to_json());

    // Wall-clock throughput gauges — volatile by construction, stripped by
    // determinism checks alongside phases_ms.
    let simulate = report.phases().get("simulate");
    let replay = report.phases().get("replay");
    let mut sections = Json::object();
    for t in crate::section_throughput() {
        sections = sections.with(&t.label, t.to_json());
    }
    report.section(
        "throughput",
        Json::object()
            .with(
                "simulate_instrs_per_sec",
                Json::F64(per_second(d.icount, simulate)),
            )
            .with(
                "replay_traces_per_sec",
                Json::F64(per_second(d.records.len() as u64, replay)),
            )
            .with("threads", Json::U64(ntp_runner::thread_count() as u64))
            .with("sections", sections)
            .with("trace_cache", ntp_tracefile::counters().to_json()),
    );
    report
}

/// Scans the command line for `--json <dir>`; falls back to `NTP_JSON=1`
/// (directory `NTP_JSON_DIR`, default `out`). `None` means no JSON output
/// was requested.
pub fn json_request() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            return Some(PathBuf::from(
                args.next().unwrap_or_else(|| "out".to_string()),
            ));
        }
    }
    if std::env::var("NTP_JSON").is_ok_and(|v| v == "1") {
        return Some(PathBuf::from(
            std::env::var("NTP_JSON_DIR").unwrap_or_else(|_| "out".to_string()),
        ));
    }
    None
}

/// Writes one `BENCH_<name>.json` per benchmark into `dir` (created if
/// missing). Returns the written paths.
pub fn write_reports(data: &[BenchData], dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(data.len());
    for d in data {
        let report = bench_report(d);
        let path = dir.join(format!("BENCH_{}.json", d.name));
        let mut text = report.to_json().pretty();
        text.push('\n');
        std::fs::write(&path, text)?;
        paths.push(path);
    }
    Ok(paths)
}

/// The shared tail of every data-driven experiment binary: if `--json`
/// or `NTP_JSON=1` asked for reports, write them and say where they went.
///
/// Exits the process with an error status if the reports cannot be
/// written (the run's numbers are already on stdout at that point).
pub fn emit_from_cli(data: &[BenchData]) {
    let Some(dir) = json_request() else {
        return;
    };
    match write_reports(data, &dir) {
        Ok(paths) => {
            for p in &paths {
                eprintln!("[json] wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("[json] failed writing to {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

/// `--json` support for text-only binaries (table3, selection_study,
/// measure): wraps the rendered section in a minimal report.
pub fn emit_text_from_cli(name: &str, text: &str) {
    let Some(dir) = json_request() else {
        return;
    };
    let scale = crate::scale_from_env();
    let mut report = Report::new(RunManifest::capture(
        name,
        scale.name(),
        crate::budget_from_env(),
        "n/a",
    ));
    report.section("text", Json::Str(text.to_string()));
    let path = dir.join(format!("BENCH_{name}.json"));
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        let mut out = report.to_json().pretty();
        out.push('\n');
        std::fs::write(&path, out)
    };
    match write() {
        Ok(()) => eprintln!("[json] wrote {}", path.display()),
        Err(e) => {
            eprintln!("[json] failed writing to {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture;

    fn tiny_data() -> BenchData {
        let w = ntp_workloads::compress::build(1);
        capture(&w, 300_000)
    }

    #[test]
    fn report_contains_required_sections_and_histograms() {
        let d = tiny_data();
        let j = bench_report(&d).to_json();
        for key in [
            "manifest",
            "phases_ms",
            "capture",
            "trace_stats",
            "redundancy",
            "mix",
            "baselines",
            "predictor",
            "mispredict_streaks",
            "engine",
            "fetch",
            "metrics",
            "throughput",
        ] {
            assert!(j.get(key).is_some(), "missing section {key}");
        }
        // ≥ 2 histograms: the streak histogram plus the registry's two.
        assert!(j
            .get("mispredict_streaks")
            .and_then(|h| h.get("buckets"))
            .is_some());
        let hists = j.get("metrics").and_then(|m| m.get("histograms")).unwrap();
        assert!(hists.get("trace.len").is_some());
        assert!(hists.get("trace.branches").is_some());
        // The capture phase made it into phases_ms.
        assert!(j.get("phases_ms").and_then(|p| p.get("simulate")).is_some());
        assert!(j.get("phases_ms").and_then(|p| p.get("replay")).is_some());
        // The trace-cache counters ride in the volatile throughput section.
        let cache = j
            .get("throughput")
            .and_then(|t| t.get("trace_cache"))
            .expect("throughput.trace_cache present");
        for key in ["hits", "misses", "invalid", "stores"] {
            assert!(cache.get(key).is_some(), "missing trace_cache.{key}");
        }
    }

    #[test]
    fn report_round_trips_through_parser() {
        let d = tiny_data();
        let text = bench_report(&d).to_json().pretty();
        let parsed = ntp_telemetry::json::parse(&text).expect("report parses");
        assert_eq!(
            parsed
                .get("capture")
                .and_then(|c| c.get("icount"))
                .and_then(Json::as_u64),
            Some(d.icount)
        );
    }

    #[test]
    fn two_reports_agree_after_stripping_volatiles() {
        let d = tiny_data();
        let mut a = bench_report(&d).to_json();
        let mut b = bench_report(&d).to_json();
        Report::strip_volatile(&mut a);
        Report::strip_volatile(&mut b);
        assert_eq!(a.render(), b.render());
    }
}
