//! Smoke tests: every experiment section renders on a small capture, with
//! the structural elements the tables and figures need.

use ntp_bench::{capture, exp, BenchData};

fn tiny_data() -> Vec<BenchData> {
    ["compress", "cc", "go"]
        .iter()
        .map(|name| {
            let w = ntp_workloads::by_name(name, ntp_workloads::ScalePreset::Tiny);
            capture(&w, 2_000_000)
        })
        .collect()
}

#[test]
fn every_section_renders() {
    let data = tiny_data();
    let sections: Vec<(&str, String)> = vec![
        ("table1", exp::table1(&data)),
        ("table2", exp::table2(&data)),
        ("table3", exp::table3()),
        ("fig6", exp::fig6(&data)),
        ("fig7", exp::fig7(&data)),
        ("table4", exp::table4(&data)),
        ("fig8", exp::fig8(&data)),
        ("cost_reduced", exp::cost_reduced(&data)),
        ("ablations", exp::ablations(&data)),
        ("confidence", exp::confidence(&data)),
        ("trace_processor", exp::trace_processor(&data)),
        ("headline", exp::headline(&data)),
    ];
    for (name, text) in &sections {
        assert!(text.starts_with("\n===="), "{name} has a banner");
        assert!(text.len() > 100, "{name} has content");
        for d in &data {
            if *name != "table3" && *name != "headline" && *name != "ablations" {
                assert!(text.contains(d.name), "{name} mentions {}", d.name);
            }
        }
    }
}

#[test]
fn figure_sections_cover_all_depths() {
    let data = tiny_data();
    let fig7 = exp::fig7(&data);
    for depth in 0..=7 {
        assert!(
            fig7.lines()
                .any(|l| l.trim_start().starts_with(&format!("{depth} "))
                    || l.trim_start().starts_with(&format!("{depth}\t"))
                    || l.starts_with(&format!("{depth}         "))),
            "fig7 has a row for depth {depth}:\n{fig7}"
        );
    }
}

#[test]
fn table3_lists_all_standard_configs() {
    let t3 = exp::table3();
    for needle in ["0-0-0-12", "7-4-8-10", "7-5-9-13", "(1p)", "(3p)"] {
        assert!(t3.contains(needle), "missing {needle}:\n{t3}");
    }
}

#[test]
fn headline_reports_relative_change() {
    let data = tiny_data();
    let h = exp::headline(&data);
    assert!(h.contains("sequential (idealized) mean"));
    assert!(h.contains("relative"));
}

#[test]
fn capture_is_deterministic() {
    let w = ntp_workloads::by_name("compress", ntp_workloads::ScalePreset::Tiny);
    let a = capture(&w, 1_000_000);
    let b = capture(&w, 1_000_000);
    assert_eq!(a.records, b.records);
    assert_eq!(a.seq_stats, b.seq_stats);
    assert_eq!(a.mb_stats, b.mb_stats);
    assert_eq!(a.gag_stats, b.gag_stats);
}
