//! Cost of the naming/index machinery: trace-ID hashing and DOLC index
//! generation with folding (the predictor's critical path in hardware and
//! in this simulator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntp_core::{Dolc, PathHistory};
use ntp_trace::{HashedId, TraceId};

fn bench_hashing(c: &mut Criterion) {
    let ids: Vec<TraceId> = (0..1024u32)
        .map(|k| TraceId::new(0x0040_0000 + k * 36, (k % 64) as u8, 6))
        .collect();
    let mut group = c.benchmark_group("hashing");
    group.throughput(Throughput::Elements(ids.len() as u64));
    group.bench_function("trace_id_hash", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for id in &ids {
                acc ^= id.hashed().0;
            }
            std::hint::black_box(acc);
        });
    });
    group.finish();
}

fn bench_dolc(c: &mut Criterion) {
    let mut hist: PathHistory<HashedId> = PathHistory::new(8);
    for k in 0..8u16 {
        hist.push(HashedId(0x1111u16.wrapping_mul(k + 1)));
    }
    let mut group = c.benchmark_group("dolc_index");
    for depth in [0usize, 3, 7] {
        let dolc = Dolc::standard(depth, 15);
        group.bench_with_input(BenchmarkId::new("depth", depth), &dolc, |b, dolc| {
            b.iter(|| std::hint::black_box(dolc.index(&hist, 15)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashing, bench_dolc);
criterion_main!(benches);
