//! Cost of the substrate underneath every experiment: functional
//! simulation plus trace selection (Table 1's capture pass).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ntp_trace::{TraceBuilder, TraceConfig};
use ntp_workloads::by_name;

fn bench_sim_and_select(c: &mut Criterion) {
    let workload = by_name("compress", ntp_workloads::ScalePreset::Tiny);
    const BUDGET: u64 = 200_000;
    let mut group = c.benchmark_group("trace_construction");
    group.throughput(Throughput::Elements(BUDGET));
    group.bench_function("simulate_only", |b| {
        b.iter(|| {
            let mut m = workload.machine();
            m.run(BUDGET).unwrap();
            std::hint::black_box(m.icount());
        });
    });
    group.bench_function("simulate_and_build_traces", |b| {
        b.iter(|| {
            let mut m = workload.machine();
            let mut builder = TraceBuilder::new(TraceConfig::default());
            let mut traces = 0u64;
            m.run_with(BUDGET, |step| {
                if builder.push(step).is_some() {
                    traces += 1;
                }
            })
            .unwrap();
            std::hint::black_box(traces);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sim_and_select);
criterion_main!(benches);
