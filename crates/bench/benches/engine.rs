//! Cost of the cycle-level consumers: the delayed-update engine (Table 4)
//! and the trace-cache fetch engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ntp_core::{NextTracePredictor, PredictorConfig};
use ntp_engine::{DelayedUpdateEngine, EngineConfig, FetchConfig, FetchEngine};
use ntp_trace::{TraceId, TraceRecord};

fn stream(n: usize) -> Vec<TraceRecord> {
    let mut x: u32 = 0xBEEF;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let pc = 0x0040_0000 + ((x >> 8) % 200) * 24;
            TraceRecord::new(
                TraceId::new(pc, ((x >> 3) & 7) as u8, 3),
                13,
                0,
                false,
                false,
            )
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let records = stream(20_000);
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("delayed_update_run", |b| {
        b.iter(|| {
            let mut e = DelayedUpdateEngine::new(
                NextTracePredictor::new(PredictorConfig::paper(15, 7)),
                EngineConfig::default(),
            );
            std::hint::black_box(e.run(&records).cycles)
        });
    });
    group.bench_function("fetch_engine_run", |b| {
        b.iter(|| {
            let mut e = FetchEngine::new(
                NextTracePredictor::new(PredictorConfig::paper(15, 7)),
                FetchConfig::default(),
            );
            std::hint::black_box(e.run(&records).cycles)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
