//! Cost of one predict+update step for every predictor configuration the
//! evaluation uses (Figs. 6-8): bounded tables at the three studied sizes,
//! the cost-reduced variant, and the unbounded model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntp_core::{
    NextTracePredictor, PredictorConfig, StoredTarget, TracePredictor, UnboundedConfig,
    UnboundedPredictor,
};
use ntp_trace::{TraceId, TraceRecord};

/// A deterministic, moderately irregular trace stream.
fn stream(n: usize) -> Vec<TraceRecord> {
    let mut x: u32 = 0x1357_9BDF;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let pc = 0x0040_0000 + ((x >> 8) % 997) * 20;
            let bits = ((x >> 3) & 0x3F) as u8;
            let calls = ((x >> 29) == 7) as u8;
            let ret = (x >> 27) & 7 == 3;
            TraceRecord::new(TraceId::new(pc, bits, 6), 14, calls, ret, ret)
        })
        .collect()
}

fn bench_bounded(c: &mut Criterion) {
    let records = stream(10_000);
    let mut group = c.benchmark_group("bounded_predict_update");
    group.throughput(Throughput::Elements(records.len() as u64));
    for bits in [12u32, 15, 18] {
        group.bench_with_input(BenchmarkId::new("table_bits", bits), &bits, |b, &bits| {
            let mut p = NextTracePredictor::new(PredictorConfig::paper(bits, 7));
            b.iter(|| {
                for r in &records {
                    let pred = p.predict();
                    std::hint::black_box(&pred);
                    p.update(r);
                }
            });
        });
    }
    group.bench_function("cost_reduced_2^15", |b| {
        let mut p = NextTracePredictor::new(PredictorConfig {
            stored_target: StoredTarget::Hashed,
            ..PredictorConfig::paper(15, 7)
        });
        b.iter(|| {
            for r in &records {
                let pred = p.predict();
                std::hint::black_box(&pred);
                p.update(r);
            }
        });
    });
    group.finish();
}

fn bench_unbounded(c: &mut Criterion) {
    let records = stream(10_000);
    let mut group = c.benchmark_group("unbounded_predict_update");
    group.throughput(Throughput::Elements(records.len() as u64));
    for depth in [0usize, 3, 7] {
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, &depth| {
            let mut p = UnboundedPredictor::new(UnboundedConfig::paper(depth));
            b.iter(|| {
                for r in &records {
                    let pred = p.predict();
                    std::hint::black_box(&pred);
                    p.update(r);
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounded, bench_unbounded);
criterion_main!(benches);
