//! The SoA hot path head-to-head: scalar `evaluate` vs the gathered
//! `evaluate_batch` sweep, at lane counts matching the replay passes
//! that use it (fig7 runs 3 lanes, cost_reduced runs 2), plus the raw
//! `predict_batch`/`update_batch` step cost.
//!
//! Throughput is reported in records (per-lane sums), so scalar and
//! batch rows are directly comparable: the batch sweep replays
//! `lanes × records` with one prefetch pass per round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntp_core::{evaluate, evaluate_batch, BatchLane, NextTracePredictor, PredictorConfig};
use ntp_trace::{TraceId, TraceRecord};

/// A deterministic, moderately irregular trace stream (distinct seeds so
/// lanes don't share table working sets).
fn stream(seed: u32, n: usize) -> Vec<TraceRecord> {
    let mut x: u32 = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let pc = 0x0040_0000 + ((x >> 8) % 997) * 20;
            let bits = ((x >> 3) & 0x3F) as u8;
            let calls = ((x >> 29) == 7) as u8;
            let ret = (x >> 27) & 7 == 3;
            TraceRecord::new(TraceId::new(pc, bits, 6), 14, calls, ret, ret)
        })
        .collect()
}

fn bench_scalar_vs_batch(c: &mut Criterion) {
    const N: usize = 10_000;
    let streams: Vec<Vec<TraceRecord>> = (0..4)
        .map(|k| stream(0x1357_9BDF ^ (k as u32 * 0x9E37), N))
        .collect();
    let cfg = PredictorConfig::paper(15, 7);

    let mut group = c.benchmark_group("evaluate_hot_path");
    for lanes in [1usize, 2, 3, 4] {
        group.throughput(Throughput::Elements((lanes * N) as u64));
        group.bench_with_input(BenchmarkId::new("scalar", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                for s in streams.iter().take(lanes) {
                    let mut p = NextTracePredictor::new(cfg);
                    std::hint::black_box(evaluate(&mut p, s));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("batch", lanes), &lanes, |b, &lanes| {
            b.iter(|| {
                let mut preds: Vec<NextTracePredictor> =
                    (0..lanes).map(|_| NextTracePredictor::new(cfg)).collect();
                let mut batch: Vec<BatchLane<'_>> = preds
                    .iter_mut()
                    .zip(streams.iter())
                    .map(|(p, s)| BatchLane::new(p, s))
                    .collect();
                std::hint::black_box(evaluate_batch(&mut batch));
            });
        });
    }
    group.finish();
}

fn bench_batch_steps(c: &mut Criterion) {
    const N: usize = 10_000;
    let streams: Vec<Vec<TraceRecord>> = (0..4)
        .map(|k| stream(0xBEEF ^ (k as u32 * 0x51_7CC1), N))
        .collect();
    let cfg = PredictorConfig::paper(15, 7);

    let mut group = c.benchmark_group("batch_step");
    group.throughput(Throughput::Elements((4 * N) as u64));
    group.bench_function("predict_update_4_lanes", |b| {
        let mut preds: Vec<NextTracePredictor> =
            (0..4).map(|_| NextTracePredictor::new(cfg)).collect();
        b.iter(|| {
            for step in 0..N {
                {
                    let views: Vec<&NextTracePredictor> = preds.iter().collect();
                    std::hint::black_box(ntp_core::predict_batch(&views));
                }
                let mut pairs: Vec<(&mut NextTracePredictor, &TraceRecord)> = preds
                    .iter_mut()
                    .zip(streams.iter())
                    .map(|(p, s)| (p, &s[step]))
                    .collect();
                ntp_core::update_batch(&mut pairs);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scalar_vs_batch, bench_batch_steps);
criterion_main!(benches);
