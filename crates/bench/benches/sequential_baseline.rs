//! Cost of the idealized sequential baseline (Table 2's inner loop), per
//! trace observed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ntp_baselines::{SequentialTracePredictor, TraceGshare};
use ntp_trace::{run_traces, Trace, TraceConfig};
use ntp_workloads::by_name;

fn captured_traces() -> Vec<Trace> {
    let workload = by_name("go", ntp_workloads::ScalePreset::Tiny);
    let mut m = workload.machine();
    let mut traces = Vec::new();
    run_traces(&mut m, 300_000, TraceConfig::default(), |t| traces.push(*t)).unwrap();
    traces
}

fn bench_baselines(c: &mut Criterion) {
    let traces = captured_traces();
    let mut group = c.benchmark_group("baselines_per_trace");
    group.throughput(Throughput::Elements(traces.len() as u64));
    group.bench_function("sequential_idealized", |b| {
        b.iter(|| {
            let mut seq = SequentialTracePredictor::paper();
            for t in &traces {
                seq.observe(t);
            }
            std::hint::black_box(seq.stats().trace_mispredicts);
        });
    });
    group.bench_function("trace_gshare_multibranch", |b| {
        b.iter(|| {
            let mut mb = TraceGshare::new(14);
            for t in &traces {
                mb.observe(t);
            }
            std::hint::black_box(mb.stats().trace_mispredicts);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
