//! Benchmarks for this PR's two hot-path changes:
//!
//! * `dolc_index` — the per-lookup cost of gathering + folding a DOLC
//!   index from the history register (what the predictor used to do twice
//!   per record, on predict *and* update) vs the full predict+update step
//!   with the cached index snapshot (recomputed once per history shift);
//! * `parallel_replay` — a (stream × depth) replay grid through
//!   `ntp_runner::map_ordered_with` at 1/2/4/8 threads, against the serial
//!   map. On a multi-core host the ordered merge should scale nearly
//!   linearly while returning bit-identical results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ntp_core::{evaluate, Dolc, NextTracePredictor, PathHistory, PredictorConfig, TracePredictor};
use ntp_runner::map_ordered_with;
use ntp_trace::{HashedId, TraceId, TraceRecord};

/// A deterministic, moderately irregular trace stream.
fn stream(seed: u32, n: usize) -> Vec<TraceRecord> {
    let mut x: u32 = seed;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let pc = 0x0040_0000 + ((x >> 8) % 997) * 20;
            let bits = ((x >> 3) & 0x3F) as u8;
            let calls = ((x >> 29) == 7) as u8;
            let ret = (x >> 27) & 7 == 3;
            TraceRecord::new(TraceId::new(pc, bits, 6), 14, calls, ret, ret)
        })
        .collect()
}

fn bench_dolc_index(c: &mut Criterion) {
    let records = stream(0x1357_9BDF, 10_000);
    let mut group = c.benchmark_group("dolc_index");
    group.throughput(Throughput::Elements(records.len() as u64));

    // The old hot path: gather + fold the full DOLC index from the history
    // register on every lookup (twice per record: predict, then update).
    group.bench_function("gather_per_lookup", |b| {
        let dolc = Dolc::standard(7, 15);
        let mut h: PathHistory<HashedId> = PathHistory::new(8);
        b.iter(|| {
            for r in &records {
                h.push(r.id().hashed());
                std::hint::black_box(dolc.index(&h, 15));
                std::hint::black_box(dolc.index(&h, 15));
            }
        });
    });

    // The new hot path: the full predict+update step, with the index
    // snapshot refreshed once per history shift and reused by both the
    // prediction and the update.
    group.bench_function("cached_predict_update", |b| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
        b.iter(|| {
            for r in &records {
                std::hint::black_box(p.predict());
                p.update(r);
            }
        });
    });
    group.finish();
}

fn bench_parallel_replay(c: &mut Criterion) {
    // A small replay grid shaped like an experiment section: 4 streams ×
    // 4 depths, each job a full evaluate() over its stream.
    let streams: Vec<Vec<TraceRecord>> = (0..4).map(|s| stream(0xACE1_0000 + s, 50_000)).collect();
    let jobs: Vec<(usize, usize)> = (0..streams.len())
        .flat_map(|s| [0usize, 2, 5, 7].map(move |d| (s, d)))
        .collect();
    let total: u64 = jobs.iter().map(|&(s, _)| streams[s].len() as u64).sum();

    let mut group = c.benchmark_group("parallel_replay");
    group.throughput(Throughput::Elements(total));
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    map_ordered_with(threads, &jobs, |_, &(s, depth)| {
                        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, depth));
                        evaluate(&mut p, &streams[s]).mispredict_pct()
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dolc_index, bench_parallel_replay);
criterion_main!(benches);
