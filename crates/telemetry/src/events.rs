//! Structured prediction-event tracing for post-hoc misprediction
//! forensics.
//!
//! The replay loops emit one [`PredictionEvent`] per prediction into an
//! [`EventSink`]. The default sink is [`NullSink`] (zero cost — the
//! acceptance budget requires telemetry overhead ≤ 5%, so event capture is
//! strictly opt-in); [`TraceLog`] keeps a sampled ring buffer of the most
//! recent events for inspection and reporting.

use crate::json::Json;
use crate::ToJson;

/// Which table served a prediction (mirror of `ntp_core::Source`, kept
/// dependency-free here since telemetry sits below every other crate).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventSource {
    /// Served by the correlating (path-indexed) table.
    Correlated,
    /// Served by the secondary (last-trace-indexed) table.
    Secondary,
    /// No table had an opinion.
    Cold,
}

impl EventSource {
    /// Stable lowercase name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventSource::Correlated => "correlated",
            EventSource::Secondary => "secondary",
            EventSource::Cold => "cold",
        }
    }
}

/// One prediction, scored.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PredictionEvent {
    /// Position in the replayed trace stream.
    pub index: u64,
    /// Table that served the prediction.
    pub source: EventSource,
    /// Primary prediction named the actual next trace.
    pub hit: bool,
    /// Primary missed but the alternate (§6) was right.
    pub alternate_hit: bool,
    /// Path-history occupancy at prediction time (0 when the predictor
    /// does not expose one).
    pub history_len: u8,
}

impl ToJson for PredictionEvent {
    /// `{i, src, hit, alt, hist}` — compact keys, there may be thousands.
    fn to_json(&self) -> Json {
        Json::object()
            .with("i", Json::U64(self.index))
            .with("src", Json::Str(self.source.name().into()))
            .with("hit", Json::Bool(self.hit))
            .with("alt", Json::Bool(self.alternate_hit))
            .with("hist", Json::U64(self.history_len as u64))
    }
}

/// Consumer of prediction events.
pub trait EventSink {
    /// Offers one event. Implementations decide whether to keep it.
    fn record(&mut self, ev: &PredictionEvent);

    /// True when `record` is a no-op, letting emitters skip event
    /// construction entirely on the hot path.
    fn enabled(&self) -> bool {
        true
    }
}

/// The default sink: drops everything, reports itself disabled, so
/// instrumented loops cost nothing when tracing is off.
#[derive(Copy, Clone, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _ev: &PredictionEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A sampling ring buffer of prediction events.
///
/// Keeps every `sample_every`-th offered event, retaining at most
/// `capacity` of the most recent samples. Cheap by construction: a modulo
/// counter plus a `Vec` slot write.
///
/// # Examples
///
/// ```
/// use ntp_telemetry::{EventSink, EventSource, PredictionEvent, TraceLog};
/// let mut log = TraceLog::new(4, 2); // keep 4, sample every 2nd
/// for i in 0..10 {
///     log.record(&PredictionEvent {
///         index: i,
///         source: EventSource::Secondary,
///         hit: i % 3 != 0,
///         alternate_hit: false,
///         history_len: 7,
///     });
/// }
/// assert_eq!(log.offered(), 10);
/// assert_eq!(log.kept(), 4, "ring holds the last 4 samples");
/// assert_eq!(log.iter().next().unwrap().index, 2);
/// ```
#[derive(Clone, Debug)]
pub struct TraceLog {
    ring: Vec<PredictionEvent>,
    capacity: usize,
    next: usize,
    sample_every: u64,
    offered: u64,
    kept_hits: u64,
    kept_misses: u64,
}

impl TraceLog {
    /// A log keeping up to `capacity` events, sampling one in
    /// `sample_every` (0 is treated as 1: keep everything offered).
    pub fn new(capacity: usize, sample_every: u64) -> TraceLog {
        TraceLog {
            ring: Vec::with_capacity(capacity.min(1024)),
            capacity,
            next: 0,
            sample_every: sample_every.max(1),
            offered: 0,
            kept_hits: 0,
            kept_misses: 0,
        }
    }

    /// Events offered via [`EventSink::record`].
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events currently retained.
    pub fn kept(&self) -> usize {
        self.ring.len()
    }

    /// Sampled events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &PredictionEvent> {
        let (tail, head) = self.ring.split_at(self.next.min(self.ring.len()));
        head.iter().chain(tail.iter())
    }

    /// Retained misses (for forensics: what fraction of the sample went
    /// wrong, and from which table).
    pub fn kept_misses(&self) -> u64 {
        self.kept_misses
    }

    /// Retained hits.
    pub fn kept_hits(&self) -> u64 {
        self.kept_hits
    }
}

impl EventSink for TraceLog {
    fn record(&mut self, ev: &PredictionEvent) {
        let keep = self.offered.is_multiple_of(self.sample_every);
        self.offered += 1;
        if !keep || self.capacity == 0 {
            return;
        }
        if ev.hit {
            self.kept_hits += 1;
        } else {
            self.kept_misses += 1;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(*ev);
            self.next = self.ring.len() % self.capacity;
        } else {
            self.ring[self.next] = *ev;
            self.next = (self.next + 1) % self.capacity;
        }
    }
}

impl ToJson for TraceLog {
    /// `{offered, sample_every, kept, kept_hits, kept_misses, events: […]}`.
    fn to_json(&self) -> Json {
        Json::object()
            .with("offered", Json::U64(self.offered))
            .with("sample_every", Json::U64(self.sample_every))
            .with("kept", Json::U64(self.kept() as u64))
            .with("kept_hits", Json::U64(self.kept_hits))
            .with("kept_misses", Json::U64(self.kept_misses))
            .with(
                "events",
                Json::Array(self.iter().map(ToJson::to_json).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64, hit: bool) -> PredictionEvent {
        PredictionEvent {
            index: i,
            source: EventSource::Correlated,
            hit,
            alternate_hit: !hit && i.is_multiple_of(2),
            history_len: 3,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(&ev(0, true)); // no-op, no panic
    }

    #[test]
    fn ring_keeps_most_recent_samples() {
        let mut log = TraceLog::new(3, 1);
        for i in 0..7 {
            log.record(&ev(i, i % 2 == 0));
        }
        let kept: Vec<u64> = log.iter().map(|e| e.index).collect();
        assert_eq!(kept, vec![4, 5, 6]);
        assert_eq!(log.offered(), 7);
        assert_eq!(log.kept_hits() + log.kept_misses(), 7, "counts all samples");
    }

    #[test]
    fn sampling_thins_the_stream() {
        let mut log = TraceLog::new(100, 5);
        for i in 0..20 {
            log.record(&ev(i, true));
        }
        let kept: Vec<u64> = log.iter().map(|e| e.index).collect();
        assert_eq!(kept, vec![0, 5, 10, 15]);
    }

    #[test]
    fn zero_capacity_counts_but_keeps_nothing() {
        let mut log = TraceLog::new(0, 1);
        for i in 0..5 {
            log.record(&ev(i, false));
        }
        assert_eq!(log.offered(), 5);
        assert_eq!(log.kept(), 0);
    }

    #[test]
    fn json_includes_sampled_events() {
        let mut log = TraceLog::new(2, 1);
        log.record(&ev(0, false));
        let j = log.to_json();
        assert_eq!(j.get("kept").and_then(Json::as_u64), Some(1));
        let rendered = j.render();
        assert!(rendered.contains(r#""src":"correlated""#), "{rendered}");
    }
}
