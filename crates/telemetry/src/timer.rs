//! Wall-clock phase timing: [`PhaseTimes`] accumulates named durations,
//! [`ScopeTimer`] records one on drop, and throughput helpers convert
//! counts over durations into per-second gauges.
//!
//! Timings are inherently non-deterministic, so [`PhaseTimes::to_json`]
//! lives under a dedicated `"phases_ms"` key that determinism checks strip
//! (see OBSERVABILITY.md).

use crate::json::Json;
use crate::ToJson;
use std::time::{Duration, Instant};

/// Accumulated wall-clock time per named phase, in recording order.
///
/// # Examples
///
/// ```
/// use ntp_telemetry::{PhaseTimes, ScopeTimer};
/// let mut phases = PhaseTimes::new();
/// {
///     let _t = ScopeTimer::new(&mut phases, "simulate");
///     // … work …
/// } // recorded here
/// assert_eq!(phases.iter().count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimes {
    /// Creates an empty accumulator.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Adds `elapsed` to `phase` (creating it on first use).
    pub fn add(&mut self, phase: &str, elapsed: Duration) {
        if let Some((_, d)) = self.phases.iter_mut().find(|(n, _)| n == phase) {
            *d += elapsed;
        } else {
            self.phases.push((phase.to_string(), elapsed));
        }
    }

    /// Total time of one phase (zero if never recorded).
    pub fn get(&self, phase: &str) -> Duration {
        self.phases
            .iter()
            .find(|(n, _)| n == phase)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Iterates `(phase, duration)` in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.phases.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (n, d) in other.iter() {
            self.add(n, d);
        }
    }

    /// One human line: `simulate 12.3 ms, replay 4.5 ms (total 16.8 ms)`.
    pub fn summary_line(&self) -> String {
        let mut parts: Vec<String> = self
            .iter()
            .map(|(n, d)| format!("{n} {:.1} ms", d.as_secs_f64() * 1e3))
            .collect();
        if parts.is_empty() {
            return "no phases recorded".to_string();
        }
        parts.push(format!(
            "(total {:.1} ms)",
            self.total().as_secs_f64() * 1e3
        ));
        parts.join(", ")
    }
}

impl ToJson for PhaseTimes {
    /// `{phase: milliseconds, …}` in recording order.
    fn to_json(&self) -> Json {
        Json::Object(
            self.phases
                .iter()
                .map(|(n, d)| (n.clone(), Json::F64(d.as_secs_f64() * 1e3)))
                .collect(),
        )
    }
}

/// RAII timer: measures from construction to drop and adds the elapsed time
/// to a [`PhaseTimes`] entry.
pub struct ScopeTimer<'a> {
    phases: &'a mut PhaseTimes,
    phase: &'a str,
    start: Instant,
}

impl<'a> ScopeTimer<'a> {
    /// Starts timing `phase`.
    pub fn new(phases: &'a mut PhaseTimes, phase: &'a str) -> ScopeTimer<'a> {
        ScopeTimer {
            phases,
            phase,
            start: Instant::now(),
        }
    }

    /// Elapsed time so far (the timer keeps running).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for ScopeTimer<'_> {
    fn drop(&mut self) {
        self.phases.add(self.phase, self.start.elapsed());
    }
}

/// Times a closure and records it as `phase`, passing the result through.
pub fn timed<T>(phases: &mut PhaseTimes, phase: &str, f: impl FnOnce() -> T) -> T {
    let _t = ScopeTimer::new(phases, phase);
    f()
}

/// Events per second for a count over a duration (0.0 for zero durations,
/// so cold runs cannot divide by zero).
pub fn per_second(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

/// Replay throughput for one named unit of work (an experiment section, a
/// capture batch, …): how many records were replayed, over how much wall
/// time, with how much total worker busy time across how many threads.
///
/// `busy >= wall` whenever more than one worker made progress at once; the
/// ratio `busy / wall` is the *effective speedup* over a serial run of the
/// same jobs — an upper bound when workers are oversubscribed (more
/// threads than cores), since `busy` counts thread residency, not CPU
/// time. All fields are wall-clock derived and therefore
/// non-deterministic — reports must keep them under a volatile key (the
/// `"throughput"` section) that determinism checks strip.
#[derive(Clone, Debug)]
pub struct ReplayThroughput {
    /// Section or batch label (e.g. `"table3"`).
    pub label: String,
    /// Records replayed (predictor lookups performed).
    pub records: u64,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Summed busy time across all workers (serial-equivalent time).
    pub busy: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl ReplayThroughput {
    /// Records per wall-clock second (0.0 for zero wall time).
    pub fn records_per_sec(&self) -> f64 {
        per_second(self.records, self.wall)
    }

    /// Effective speedup versus a serial run: `busy / wall` (1.0 for zero
    /// wall time).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / wall
        }
    }

    /// One human line:
    /// `table3: 1.2M records in 0.84 s (1.43M rec/s, 3.6x over serial, 4 threads)`.
    pub fn summary_line(&self) -> String {
        format!(
            "{}: {} records in {:.2} s ({:.0} rec/s, {:.2}x over serial, {} thread{})",
            self.label,
            self.records,
            self.wall.as_secs_f64(),
            self.records_per_sec(),
            self.speedup(),
            self.threads,
            if self.threads == 1 { "" } else { "s" },
        )
    }
}

impl ToJson for ReplayThroughput {
    /// `{records, wall_ms, busy_ms, threads, records_per_sec, speedup}`.
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("records".into(), Json::U64(self.records)),
            ("wall_ms".into(), Json::F64(self.wall.as_secs_f64() * 1e3)),
            ("busy_ms".into(), Json::F64(self.busy.as_secs_f64() * 1e3)),
            ("threads".into(), Json::U64(self.threads as u64)),
            ("records_per_sec".into(), Json::F64(self.records_per_sec())),
            ("speedup".into(), Json::F64(self.speedup())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_timer_records_on_drop() {
        let mut phases = PhaseTimes::new();
        {
            let t = ScopeTimer::new(&mut phases, "a");
            std::hint::black_box(t.elapsed());
        }
        {
            let _t = ScopeTimer::new(&mut phases, "a");
        }
        assert_eq!(phases.iter().count(), 1, "same phase accumulates");
        assert!(phases.get("a") >= Duration::ZERO);
        assert_eq!(phases.get("missing"), Duration::ZERO);
    }

    #[test]
    fn timed_passes_results_through() {
        let mut phases = PhaseTimes::new();
        let v = timed(&mut phases, "work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(phases.iter().next().unwrap().0, "work");
    }

    #[test]
    fn merge_and_total() {
        let mut a = PhaseTimes::new();
        a.add("x", Duration::from_millis(10));
        let mut b = PhaseTimes::new();
        b.add("x", Duration::from_millis(5));
        b.add("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(15));
        assert_eq!(a.total(), Duration::from_millis(16));
        assert!(a.summary_line().starts_with("x 15.0 ms, y 1.0 ms"));
    }

    #[test]
    fn per_second_guards_zero() {
        assert_eq!(per_second(100, Duration::ZERO), 0.0);
        assert_eq!(per_second(100, Duration::from_secs(2)), 50.0);
    }

    #[test]
    fn replay_throughput_math_and_json() {
        let t = ReplayThroughput {
            label: "table3".into(),
            records: 1_000,
            wall: Duration::from_secs(2),
            busy: Duration::from_secs(6),
            threads: 4,
        };
        assert_eq!(t.records_per_sec(), 500.0);
        assert_eq!(t.speedup(), 3.0);
        let line = t.summary_line();
        assert!(
            line.contains("table3") && line.contains("4 threads"),
            "{line}"
        );
        let json = t.to_json().pretty();
        for key in [
            "records",
            "wall_ms",
            "busy_ms",
            "threads",
            "records_per_sec",
            "speedup",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }

        let cold = ReplayThroughput {
            label: "empty".into(),
            records: 0,
            wall: Duration::ZERO,
            busy: Duration::ZERO,
            threads: 1,
        };
        assert_eq!(cold.records_per_sec(), 0.0);
        assert_eq!(cold.speedup(), 1.0);
    }
}
