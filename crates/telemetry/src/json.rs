//! A dependency-free JSON value model, writer and parser.
//!
//! The repo's reporting layer serializes every stats struct into a single
//! machine-readable document. Pulling in `serde` would break the offline
//! tier-1 build (the registry is unreachable in the evaluation container),
//! and the data model here is tiny, so this module implements exactly what
//! is needed:
//!
//! * [`Json`] — an order-preserving value tree (objects keep insertion
//!   order, so reports are deterministic byte-for-byte);
//! * [`Json::render`] / [`Json::pretty`] — writers with full string
//!   escaping and shortest-roundtrip float formatting;
//! * [`parse`] — a strict recursive-descent parser, used by tests and by
//!   `ntp report --validate` to prove emitted reports are well-formed.

use std::fmt;

/// A JSON value. Object member order is preserved (insertion order), which
/// makes report output deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters; serialized without a decimal point).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values serialize as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a member to an object; panics on non-objects (a programming
    /// error in report assembly).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not [`Json::Object`].
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Object(members) => members.push((key.to_string(), value)),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks a member up by key (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Removes a member by key, returning it (objects only). Used by the
    /// determinism tests to strip volatile manifest fields.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        if let Json::Object(members) = self {
            if let Some(pos) = members.iter().position(|(k, _)| k == key) {
                return Some(members.remove(pos).1);
            }
        }
        None
    }

    /// The value as `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation, a trailing newline-free
    /// document suitable for humans and diffs.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*v, &mut buf));
            }
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(
                    out,
                    indent,
                    level,
                    '[',
                    ']',
                    items.len(),
                    |out, k, ind, lvl| {
                        items[k].write(out, ind, lvl);
                    },
                );
            }
            Json::Object(members) => {
                write_seq(
                    out,
                    indent,
                    level,
                    '{',
                    '}',
                    members.len(),
                    |out, k, ind, lvl| {
                        let (key, value) = &members[k];
                        write_escaped(out, key);
                        out.push(':');
                        if ind.is_some() {
                            out.push(' ');
                        }
                        value.write(out, ind, lvl);
                    },
                );
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(level + 1) * width {
                out.push(' ');
            }
        }
        item(out, k, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn fmt_u64(mut v: u64, buf: &mut [u8; 20]) -> &str {
    let mut k = buf.len();
    loop {
        k -= 1;
        buf[k] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[k..]).expect("digits are ASCII")
}

/// Floats use Rust's shortest-roundtrip `Display`, which is deterministic
/// and re-parses to the identical bit pattern. Integral floats gain a `.0`
/// so the value stays float-typed across a round trip. Non-finite values
/// become `null`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first offending
/// character.
///
/// # Examples
///
/// ```
/// use ntp_telemetry::json::{parse, Json};
/// let v = parse(r#"{"a": [1, 2.5, "x\n"], "b": null}"#).unwrap();
/// assert_eq!(v.get("a").unwrap(), &Json::Array(vec![
///     Json::U64(1), Json::F64(2.5), Json::Str("x\n".into()),
/// ]));
/// ```
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: only well-formed pairs accepted.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync to the char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad hex digit")),
            };
            v = v * 16 + d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_preserves_member_order() {
        let v = Json::object()
            .with("zebra", Json::U64(1))
            .with("apple", Json::U64(2));
        assert_eq!(v.render(), r#"{"zebra":1,"apple":2}"#);
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::object()
            .with("name", Json::Str("trace \"x\"\n".into()))
            .with("n", Json::U64(u64::MAX))
            .with("neg", Json::I64(-42))
            .with("pi", Json::F64(3.5))
            .with("whole", Json::F64(2.0))
            .with("flag", Json::Bool(true))
            .with("none", Json::Null)
            .with("xs", Json::Array(vec![Json::U64(1), Json::Object(vec![])]));
        for text in [v.render(), v.pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = Json::F64(2.0).render();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Json::F64(2.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""aé😀\t""#).unwrap();
        assert_eq!(v, Json::Str("aé😀\t".into()));
        // And our writer escapes control characters so it round-trips.
        let s = Json::Str("\u{1}".into()).render();
        assert_eq!(s, "\"\\u0001\"");
        assert_eq!(parse(&s).unwrap(), Json::Str("\u{1}".into()));
    }

    #[test]
    fn remove_strips_members() {
        let mut v = parse(r#"{"keep":1,"drop":2}"#).unwrap();
        assert_eq!(v.remove("drop"), Some(Json::U64(2)));
        assert_eq!(v.render(), r#"{"keep":1}"#);
    }
}
