//! # ntp-telemetry — metrics, event tracing and machine-readable reports
//!
//! The observability substrate of the stack. Every other crate depends on
//! this one (it depends on nothing), implements [`ToJson`] for its stats
//! structs, and feeds the shared building blocks:
//!
//! * [`MetricsRegistry`] — named counters / gauges / histograms with
//!   near-zero-cost recording (plain `u64` adds through dense handles; no
//!   locks — shards own registries and [`MetricsRegistry::merge`]
//!   aggregates);
//! * [`Histogram`] — pow-2 bucketed distributions (trace length,
//!   misprediction streaks, fetch bandwidth, serving latency tails);
//! * [`RollingWindow`] — a fixed ring of per-epoch registry buckets for
//!   live rates (QPS over the last N seconds), deterministic under
//!   injected epochs;
//! * [`Snapshot`] — named registry sections serialized as JSON or as a
//!   flat `name value` text exposition (the scrape endpoint's format);
//! * [`PhaseTimes`] / [`ScopeTimer`] — per-phase wall-clock profiling
//!   (simulate / trace-build / replay / train) and
//!   [`per_second`] throughput gauges;
//! * [`EventSink`] / [`TraceLog`] — sampled structured prediction events
//!   for misprediction forensics (default-off via [`NullSink`]);
//! * [`json`] — a dependency-free JSON writer *and* parser (the registry
//!   is unreachable offline, so no serde), keeping report output
//!   deterministic byte-for-byte;
//! * [`RunManifest`] / [`Report`] — the `BENCH_*.json` document format:
//!   run metadata plus named sections.
//!
//! See OBSERVABILITY.md at the repo root for the emitted schema.
//!
//! # Example
//!
//! ```
//! use ntp_telemetry::{
//!     json, MetricsRegistry, Report, RunManifest, ScopeTimer, ToJson,
//! };
//!
//! let mut metrics = MetricsRegistry::new();
//! let traces = metrics.counter("trace.count");
//! let lens = metrics.histogram("trace.len");
//! for len in [16u64, 12, 16, 3] {
//!     metrics.inc(traces);
//!     metrics.observe(lens, len);
//! }
//!
//! let mut report = Report::new(RunManifest::capture("demo", "tiny", 1_000, "paper(15,7)"));
//! {
//!     let _t = ScopeTimer::new(report.phases_mut(), "replay");
//! }
//! report.section("metrics", metrics.to_json());
//! let text = report.to_json().pretty();
//! assert!(json::parse(&text).is_ok());
//! ```

#![warn(missing_docs)]

pub mod json;

mod events;
mod hist;
mod manifest;
mod metrics;
mod report;
mod rolling;
mod snapshot;
mod timer;

pub use events::{EventSink, EventSource, NullSink, PredictionEvent, TraceLog};
pub use hist::{Histogram, BUCKETS};
pub use json::Json;
pub use manifest::RunManifest;
pub use metrics::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use report::Report;
pub use rolling::RollingWindow;
pub use snapshot::Snapshot;
pub use timer::{per_second, timed, PhaseTimes, ReplayThroughput, ScopeTimer};

/// Conversion into the telemetry JSON tree. Implemented by every stats
/// struct in the workspace so a full run can be serialized into one
/// machine-readable report.
pub trait ToJson {
    /// Serializes `self` as a [`Json`] tree.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}
