//! A point-in-time snapshot of named metric sections.
//!
//! [`Snapshot`] is the wire/report shape of the live observability plane:
//! an ordered list of `(section, MetricsRegistry)` pairs — the serving
//! layer uses one section per shard plus `server` and `total` — with two
//! serializations off the same data:
//!
//! * [`ToJson`]: an object of `section → registry JSON` in insertion
//!   order (machines, `ntp top --json`);
//! * [`Snapshot::to_text`]: a flat `name value` exposition, one metric
//!   per line with section-qualified names, so `curl`/`grep`/`awk` can
//!   scrape the sidecar endpoint without a JSON parser.

use crate::json::Json;
use crate::{MetricsRegistry, ToJson};

/// An ordered collection of named [`MetricsRegistry`] sections.
///
/// # Examples
///
/// ```
/// use ntp_telemetry::{MetricsRegistry, Snapshot, ToJson};
/// let mut shard = MetricsRegistry::new();
/// let c = shard.counter("frames.predict");
/// shard.add(c, 41);
/// let mut snap = Snapshot::new();
/// snap.push("shard0", shard);
/// assert!(snap.to_text().contains("shard0.frames.predict 41"));
/// assert!(snap.to_json().render().starts_with(r#"{"shard0":"#));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    sections: Vec<(String, MetricsRegistry)>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Appends a section. Order of insertion is order of serialization;
    /// pushing a duplicate name keeps both (callers use unique names).
    pub fn push(&mut self, name: &str, metrics: MetricsRegistry) {
        self.sections.push((name.to_string(), metrics));
    }

    /// Looks up a section by name.
    pub fn get(&self, name: &str) -> Option<&MetricsRegistry> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| m)
    }

    /// Iterates sections in insertion order.
    pub fn sections(&self) -> impl Iterator<Item = (&str, &MetricsRegistry)> {
        self.sections.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections have been pushed.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Merges every section whose name satisfies `pred` into one registry
    /// (counters/histograms add, gauges last-writer-wins), in insertion
    /// order.
    pub fn merged_where(&self, pred: impl Fn(&str) -> bool) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for (name, m) in self.sections() {
            if pred(name) {
                out.merge(m);
            }
        }
        out
    }

    /// Flat `name value` text exposition: one line per metric, names
    /// qualified as `<section>.<metric>`. Histograms expand into
    /// `.count/.sum/.min/.max/.mean/.p50/.p99/.p999` lines. Floats render
    /// exactly as the JSON writer would, so the two formats never disagree
    /// on a value.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut line = |name: &str, value: &str| {
            out.push_str(name);
            out.push(' ');
            out.push_str(value);
            out.push('\n');
        };
        for (section, m) in self.sections() {
            for (name, v) in m.counters_iter() {
                line(&format!("{section}.{name}"), &v.to_string());
            }
            for (name, v) in m.gauges_iter() {
                line(&format!("{section}.{name}"), &Json::F64(v).render());
            }
            for (name, h) in m.histograms_iter() {
                let fields: [(&str, String); 8] = [
                    ("count", h.count().to_string()),
                    ("sum", h.sum().to_string()),
                    ("min", h.min().to_string()),
                    ("max", h.max().to_string()),
                    ("mean", Json::F64(h.mean()).render()),
                    ("p50", h.p50().to_string()),
                    ("p99", h.p99().to_string()),
                    ("p999", h.p999().to_string()),
                ];
                for (field, value) in fields {
                    line(&format!("{section}.{name}.{field}"), &value);
                }
            }
        }
        out
    }
}

impl ToJson for Snapshot {
    /// `{<section>: {counters: …, gauges: …, histograms: …}, …}` in
    /// insertion order.
    fn to_json(&self) -> Json {
        Json::Object(
            self.sections()
                .map(|(n, m)| (n.to_string(), m.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(frames: u64, depth: f64, lat: &[u64]) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        let c = m.counter("frames.predict");
        m.add(c, frames);
        let g = m.gauge("queue.depth");
        m.set(g, depth);
        let h = m.histogram("latency_us");
        for v in lat {
            m.observe(h, *v);
        }
        m
    }

    #[test]
    fn sections_serialize_in_insertion_order() {
        let mut snap = Snapshot::new();
        snap.push("shard1", shard(2, 0.0, &[]));
        snap.push("shard0", shard(1, 0.0, &[]));
        let json = snap.to_json().render();
        let s1 = json.find("shard1").unwrap();
        let s0 = json.find("shard0").unwrap();
        assert!(s1 < s0, "insertion order preserved: {json}");
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap.get("shard0")
                .unwrap()
                .counter_by_name("frames.predict"),
            Some(1)
        );
        assert!(snap.get("shard9").is_none());
    }

    #[test]
    fn text_exposition_is_flat_and_complete() {
        let mut snap = Snapshot::new();
        snap.push("shard0", shard(41, 3.0, &[10, 20, 4000]));
        let text = snap.to_text();
        assert!(text.contains("shard0.frames.predict 41\n"), "{text}");
        assert!(text.contains("shard0.queue.depth 3.0\n"), "{text}");
        assert!(text.contains("shard0.latency_us.count 3\n"), "{text}");
        assert!(text.contains("shard0.latency_us.max 4000\n"), "{text}");
        assert!(text.contains("shard0.latency_us.p999 "), "{text}");
        // Every line is exactly `name value`.
        for l in text.lines() {
            assert_eq!(l.split(' ').count(), 2, "malformed line: {l}");
        }
    }

    #[test]
    fn merged_where_folds_matching_sections() {
        let mut snap = Snapshot::new();
        snap.push("server", shard(1000, 0.0, &[]));
        snap.push("shard0", shard(3, 1.0, &[5]));
        snap.push("shard1", shard(4, 2.0, &[9]));
        let total = snap.merged_where(|n| n.starts_with("shard"));
        assert_eq!(total.counter_by_name("frames.predict"), Some(7));
        assert_eq!(total.histogram_by_name("latency_us").unwrap().count(), 2);
        let empty = snap.merged_where(|_| false);
        assert!(empty.counter_by_name("frames.predict").is_none());
    }

    #[test]
    fn json_and_text_agree_on_values() {
        let mut snap = Snapshot::new();
        snap.push("s", shard(7, 1.5, &[2, 2, 2]));
        let json = snap.to_json().render();
        assert!(json.contains(r#""frames.predict":7"#), "{json}");
        assert!(json.contains(r#""queue.depth":1.5"#), "{json}");
        assert!(snap.to_text().contains("s.queue.depth 1.5\n"));
    }
}
