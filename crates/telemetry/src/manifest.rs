//! Run metadata: what produced a report, where, and under which knobs —
//! so a `BENCH_*.json` is interpretable (and regenerable) months later.

use crate::json::Json;
use crate::ToJson;
use std::time::{SystemTime, UNIX_EPOCH};

/// Identifying metadata attached to every report.
///
/// The `git_rev`, `host` and `unix_time` fields are *volatile*: two runs of
/// the same workload differ only there (plus `"phases_ms"` timings).
/// Determinism checks strip them — see [`RunManifest::VOLATILE_KEYS`].
/// Setting `NTP_DETERMINISTIC=1` pins them at capture time instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunManifest {
    /// What ran (benchmark or workload name).
    pub name: String,
    /// Scale preset in force (`tiny` / `default` / `full`).
    pub scale: String,
    /// Instruction budget of the run.
    pub instr_budget: u64,
    /// One-line description of the predictor configuration measured.
    pub predictor: String,
    /// Git revision of the tree (best effort; `unknown` outside a repo).
    pub git_rev: String,
    /// Hostname (best effort).
    pub host: String,
    /// Seconds since the Unix epoch at capture.
    pub unix_time: u64,
}

impl RunManifest {
    /// Manifest keys that vary between otherwise-identical runs; strip
    /// these before byte-comparing reports.
    pub const VOLATILE_KEYS: [&'static str; 3] = ["git_rev", "host", "unix_time"];

    /// Captures a manifest for `name` from the environment. When
    /// `NTP_DETERMINISTIC=1` is set, the volatile fields are pinned to
    /// fixed values so whole reports compare byte-identically.
    pub fn capture(name: &str, scale: &str, instr_budget: u64, predictor: &str) -> RunManifest {
        let deterministic = std::env::var("NTP_DETERMINISTIC").is_ok_and(|v| v == "1");
        let (git_rev, host, unix_time) = if deterministic {
            ("deterministic".to_string(), "deterministic".to_string(), 0)
        } else {
            (
                git_revision().unwrap_or_else(|| "unknown".to_string()),
                hostname().unwrap_or_else(|| "unknown".to_string()),
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0),
            )
        };
        RunManifest {
            name: name.to_string(),
            scale: scale.to_string(),
            instr_budget,
            predictor: predictor.to_string(),
            git_rev,
            host,
            unix_time,
        }
    }
}

impl ToJson for RunManifest {
    fn to_json(&self) -> Json {
        Json::object()
            .with("name", Json::Str(self.name.clone()))
            .with("scale", Json::Str(self.scale.clone()))
            .with("instr_budget", Json::U64(self.instr_budget))
            .with("predictor", Json::Str(self.predictor.clone()))
            .with("git_rev", Json::Str(self.git_rev.clone()))
            .with("host", Json::Str(self.host.clone()))
            .with("unix_time", Json::U64(self.unix_time))
    }
}

/// `git rev-parse --short HEAD`, best effort (reports must not fail when
/// the tree is exported without `.git` or `git` is missing).
fn git_revision() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if rev.is_empty() {
        None
    } else {
        Some(rev)
    }
}

/// `$HOSTNAME`, else `/etc/hostname`, best effort.
fn hostname() -> Option<String> {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return Some(h);
        }
    }
    let h = std::fs::read_to_string("/etc/hostname").ok()?;
    let h = h.trim().to_string();
    if h.is_empty() {
        None
    } else {
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_serializes_all_fields() {
        let m = RunManifest {
            name: "compress".into(),
            scale: "tiny".into(),
            instr_budget: 1000,
            predictor: "paper(15,7)".into(),
            git_rev: "abc123".into(),
            host: "hosty".into(),
            unix_time: 42,
        };
        let j = m.to_json();
        for key in [
            "name",
            "scale",
            "instr_budget",
            "predictor",
            "git_rev",
            "host",
            "unix_time",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("name").and_then(Json::as_str), Some("compress"));
    }

    #[test]
    fn volatile_keys_cover_what_varies() {
        let mut j = RunManifest::capture("x", "tiny", 1, "p").to_json();
        for key in RunManifest::VOLATILE_KEYS {
            assert!(j.remove(key).is_some(), "{key} present before strip");
        }
        // What remains is fully determined by the arguments.
        assert_eq!(
            j.render(),
            r#"{"name":"x","scale":"tiny","instr_budget":1,"predictor":"p"}"#
        );
    }
}
