//! A power-of-two bucketed histogram for `u64` samples.
//!
//! Recording is a handful of integer operations (a `leading_zeros`, an
//! array add, min/max updates) — cheap enough to sit on simulation hot
//! paths. Bucket `k` covers `[2^(k-1), 2^k)` (bucket 0 holds zeros), so 65
//! buckets cover the full `u64` range. Used for trace-length,
//! misprediction-streak and fetch-bandwidth distributions.

use crate::json::Json;
use crate::ToJson;

/// Number of buckets: zeros plus one per power of two.
pub const BUCKETS: usize = 65;

/// A pow-2 bucketed histogram with exact count/sum/min/max.
///
/// # Examples
///
/// ```
/// use ntp_telemetry::Histogram;
/// let mut h = Histogram::new();
/// for v in [0, 1, 3, 3, 16] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 16);
/// assert!((h.mean() - 4.6).abs() < 1e-9);
/// assert_eq!(h.bucket_count(3), 2, "3 falls in [2,4)");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Bucket index of a value: 0 for 0, otherwise `65 - leading_zeros`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Hot-path safe: no allocation, no branching
    /// beyond min/max.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a sample `n` times (merging pre-aggregated counts).
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples in the bucket containing `v`.
    pub fn bucket_count(&self, v: u64) -> u64 {
        self.buckets[bucket_of(v)]
    }

    /// An upper bound on the `q`-quantile (0.0..=1.0): the inclusive top of
    /// the first bucket at which the cumulative count reaches
    /// `ceil(q * count)`. Exact to within the pow-2 bucket resolution.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_top(k).min(self.max);
            }
        }
        self.max
    }

    /// The `q`-quantile (0.0..=1.0), as an upper bound exact to the
    /// pow-2 bucket resolution — an alias of
    /// [`Histogram::quantile_upper_bound`] with the ergonomic name the
    /// latency reports use. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_upper_bound(q)
    }

    /// Median upper bound (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th-percentile upper bound (`quantile(0.99)`).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile upper bound (`quantile(0.999)`) — the overload
    /// tail the serving reports lead with.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Iterates non-empty buckets as `(lo, hi_inclusive, count)`.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(k, n)| (bucket_bottom(k), bucket_top(k), *n))
    }
}

/// Lowest value in bucket `k`.
fn bucket_bottom(k: usize) -> u64 {
    match k {
        0 => 0,
        1 => 1,
        _ => 1u64 << (k - 1),
    }
}

/// Highest value in bucket `k` (inclusive).
fn bucket_top(k: usize) -> u64 {
    match k {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

impl ToJson for Histogram {
    /// `{count, sum, min, max, mean, p50, p99, p999, buckets:
    /// [[lo, hi, n], …]}` with only non-empty buckets listed.
    fn to_json(&self) -> Json {
        Json::object()
            .with("count", Json::U64(self.count))
            .with("sum", Json::U64(self.sum))
            .with("min", Json::U64(self.min()))
            .with("max", Json::U64(self.max))
            .with("mean", Json::F64(self.mean()))
            .with("p50", Json::U64(self.quantile_upper_bound(0.5)))
            .with("p99", Json::U64(self.quantile_upper_bound(0.99)))
            .with("p999", Json::U64(self.quantile_upper_bound(0.999)))
            .with(
                "buckets",
                Json::Array(
                    self.nonempty_buckets()
                        .map(|(lo, hi, n)| {
                            Json::Array(vec![Json::U64(lo), Json::U64(hi), Json::U64(n)])
                        })
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1 << 20, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 2, "2 and 3 share [2,4)");
        assert_eq!(h.bucket_count(4), 2, "4 and 7 share [4,8)");
        assert_eq!(h.bucket_count(8), 1);
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn quantiles_bound_from_above() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile_upper_bound(0.5);
        assert!((50..=63).contains(&p50), "p50 {p50} within bucket of 50");
        assert_eq!(h.quantile_upper_bound(1.0), 100, "clamped to observed max");
        assert_eq!(h.quantile_upper_bound(0.0), 1);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..50u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 0..70u64 {
            b.record(v * 7 + 1);
            whole.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(9, 4);
        a.record_n(0, 0);
        for _ in 0..4 {
            b.record(9);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_accessors_on_empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn p999_separates_the_tail_from_p99() {
        let mut h = Histogram::new();
        // 9989 fast samples, 10 slow, 1 pathological: p99 stays in the fast
        // bucket, p99.9 lands in the slow bucket, max sees the outlier.
        h.record_n(10, 9989);
        h.record_n(5_000, 10);
        h.record(1 << 30);
        assert_eq!(h.p99(), 15, "p99 bounded by the fast bucket [8,16)");
        assert_eq!(h.p999(), 8191, "p99.9 bounded by the slow bucket");
        assert_eq!(h.quantile(1.0), 1 << 30);
        let json = crate::ToJson::to_json(&h).render();
        assert!(json.contains(r#""p999":8191"#), "p999 serialized: {json}");
    }

    #[test]
    fn quantile_accessors_on_single_bucket() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(5); // all samples in [4,8)
        }
        // Every quantile lands in the one occupied bucket, clamped to max.
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.p99(), 5);
        assert_eq!(h.quantile(1.0), 5);
    }

    #[test]
    fn quantile_accessors_on_saturated_samples() {
        let mut h = Histogram::new();
        h.record_n(u64::MAX, 3);
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
        // Mixing in small samples keeps p50 low and p99 saturated.
        h.record_n(1, 97);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn quantile_rank_rounding_at_exact_bucket_edges() {
        // 50 samples at 1 (bucket [1,1]) and 50 at 100 (bucket [64,128)):
        // rank ceil(0.5 * 100) = 50 is reached exactly at the end of the
        // first bucket, so p50 must NOT spill into the second.
        let mut h = Histogram::new();
        h.record_n(1, 50);
        h.record_n(100, 50);
        assert_eq!(h.p50(), 1, "rank 50 satisfied by the first bucket");
        // One rank past the edge crosses into the top bucket, clamped to
        // the observed max (100), not the bucket top (127).
        assert_eq!(h.quantile_upper_bound(0.51), 100);
        // q = 0.0 still reports rank 1 (the minimum's bucket), not rank 0.
        assert_eq!(h.quantile_upper_bound(0.0), 1);
    }

    #[test]
    fn quantile_is_max_at_one_and_clamps_out_of_range_q() {
        let mut h = Histogram::new();
        for v in [3u64, 900, 77, 12_345] {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(1.0), h.max());
        // Out-of-range q is clamped, not an error or a wild rank.
        assert_eq!(h.quantile_upper_bound(2.0), h.quantile_upper_bound(1.0));
        assert_eq!(h.quantile_upper_bound(-3.0), h.quantile_upper_bound(0.0));
        // NaN degrades to the lowest rank rather than panicking.
        assert_eq!(h.quantile_upper_bound(f64::NAN), 3);
    }

    #[test]
    fn quantile_rank_math_survives_huge_counts() {
        // Counts near u64::MAX exercise the f64 rank computation: the
        // product q * count and the cast back to u64 must not overflow,
        // wrap, or land outside the populated buckets.
        let mut h = Histogram::new();
        h.record_n(7, u64::MAX - 1);
        h.record(1 << 40);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p999(), 7, "the tail sample is far below rank 99.9%");
        assert_eq!(h.quantile_upper_bound(1.0), 1 << 40);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        assert_eq!(h.nonempty_buckets().count(), 0);
    }
}
