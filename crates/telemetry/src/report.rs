//! Report assembly: one [`RunManifest`] plus named sections, serialized to
//! a single JSON document (the `BENCH_*.json` format — see
//! OBSERVABILITY.md).

use crate::json::Json;
use crate::{PhaseTimes, RunManifest, ToJson};

/// A machine-readable telemetry bundle.
///
/// Sections keep insertion order so output is deterministic. Wall-clock
/// phase timings serialize under the dedicated `"phases_ms"` key; reports
/// may also add a `"throughput"` section of wall-clock-derived gauges
/// (instructions/sec and the like). Those two top-level keys — together
/// with [`RunManifest::VOLATILE_KEYS`] inside `"manifest"` — are
/// everything [`Report::strip_volatile`] removes before determinism
/// comparisons (see [`Report::VOLATILE_SECTIONS`]).
///
/// # Examples
///
/// ```
/// use ntp_telemetry::{json, Json, Report, RunManifest, ToJson};
/// let manifest = RunManifest::capture("demo", "tiny", 1_000, "paper(15,7)");
/// let mut report = Report::new(manifest);
/// report.section("stats", Json::object().with("traces", Json::U64(7)));
/// let text = report.to_json().render();
/// let parsed = json::parse(&text).unwrap();
/// assert_eq!(parsed.get("stats").unwrap().get("traces"), Some(&Json::U64(7)));
/// ```
#[derive(Clone, Debug)]
pub struct Report {
    manifest: RunManifest,
    phases: PhaseTimes,
    sections: Vec<(String, Json)>,
}

impl Report {
    /// Starts an empty report.
    pub fn new(manifest: RunManifest) -> Report {
        Report {
            manifest,
            phases: PhaseTimes::new(),
            sections: Vec::new(),
        }
    }

    /// The manifest.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Adds (or replaces) a named section.
    pub fn section(&mut self, name: &str, value: Json) -> &mut Report {
        if let Some((_, v)) = self.sections.iter_mut().find(|(n, _)| n == name) {
            *v = value;
        } else {
            self.sections.push((name.to_string(), value));
        }
        self
    }

    /// Mutable access to the wall-clock phase accumulator.
    pub fn phases_mut(&mut self) -> &mut PhaseTimes {
        &mut self.phases
    }

    /// Read access to the phase accumulator.
    pub fn phases(&self) -> &PhaseTimes {
        &self.phases
    }

    /// Top-level report sections whose content depends on wall-clock time
    /// rather than the run itself.
    pub const VOLATILE_SECTIONS: [&'static str; 2] = ["phases_ms", "throughput"];

    /// Strips every volatile member from a rendered report tree (manifest
    /// identity fields, wall-clock timings and throughput gauges), leaving
    /// only run-determined content. Used by determinism tests and
    /// `scripts/check.sh`.
    pub fn strip_volatile(tree: &mut Json) {
        for key in Report::VOLATILE_SECTIONS {
            tree.remove(key);
        }
        if let Some(manifest) = tree_get_mut(tree, "manifest") {
            for key in RunManifest::VOLATILE_KEYS {
                manifest.remove(key);
            }
        }
    }
}

fn tree_get_mut<'a>(tree: &'a mut Json, key: &str) -> Option<&'a mut Json> {
    match tree {
        Json::Object(members) => members.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

impl ToJson for Report {
    /// `{manifest: …, phases_ms: …, <section>: …}` in insertion order.
    fn to_json(&self) -> Json {
        let mut j = Json::object()
            .with("manifest", self.manifest.to_json())
            .with("phases_ms", self.phases.to_json());
        for (name, value) in &self.sections {
            j.set(name, value.clone());
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use std::time::Duration;

    fn sample() -> Report {
        let manifest = RunManifest {
            name: "t".into(),
            scale: "tiny".into(),
            instr_budget: 5,
            predictor: "p".into(),
            git_rev: "r1".into(),
            host: "h1".into(),
            unix_time: 1,
        };
        let mut r = Report::new(manifest);
        r.phases_mut().add("simulate", Duration::from_millis(3));
        r.section("stats", Json::object().with("n", Json::U64(9)));
        r.section(
            "throughput",
            Json::object().with("instrs_per_sec", Json::F64(123.4)),
        );
        r
    }

    #[test]
    fn sections_replace_by_name() {
        let mut r = sample();
        r.section("stats", Json::U64(1));
        assert_eq!(r.to_json().get("stats"), Some(&Json::U64(1)));
    }

    #[test]
    fn strip_volatile_makes_runs_comparable() {
        let mut a = sample().to_json();
        let mut b = sample().to_json();
        // Perturb everything volatile in b.
        if let Some(m) = tree_get_mut(&mut b, "manifest") {
            m.remove("git_rev");
            m.set("git_rev", Json::Str("other".into()));
        }
        Report::strip_volatile(&mut a);
        Report::strip_volatile(&mut b);
        assert_eq!(a.render(), b.render());
        assert!(a.get("phases_ms").is_none());
        assert!(a.get("throughput").is_none());
        assert!(a.get("stats").is_some(), "non-volatile sections survive");
        assert!(a.get("manifest").unwrap().get("name").is_some());
    }

    #[test]
    fn report_roundtrips_through_parser() {
        let text = sample().to_json().pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(
            parsed.get("manifest").unwrap().get("name"),
            Some(&Json::Str("t".into()))
        );
        assert!(parsed.get("phases_ms").unwrap().get("simulate").is_some());
    }
}
