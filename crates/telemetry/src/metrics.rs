//! A lightweight registry of named counters, gauges and histograms.
//!
//! Design constraints (from the hot paths this serves):
//!
//! * **Recording is a plain integer add** — metric handles are indices into
//!   dense `Vec`s, resolved once at registration; no hashing, no locking,
//!   no atomics on the record path (simulation is single-threaded; shards
//!   each own a registry and [`MetricsRegistry::merge`] aggregates them).
//! * **Registration order is serialization order**, so reports are
//!   deterministic.

use crate::json::Json;
use crate::{Histogram, ToJson};

/// Handle to a registered counter (a dense index).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of named metrics.
///
/// # Examples
///
/// ```
/// use ntp_telemetry::{MetricsRegistry, ToJson};
/// let mut m = MetricsRegistry::new();
/// let fetches = m.counter("engine.fetches");
/// let ipc = m.gauge("engine.ipc");
/// let lens = m.histogram("trace.len");
/// m.add(fetches, 3);
/// m.set(ipc, 5.4);
/// m.observe(lens, 16);
/// assert_eq!(m.counter_value(fetches), 3);
/// assert!(m.to_json().render().contains("engine.ipc"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<f64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(k) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(k);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(k) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(k);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(0.0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(k) = self.hist_names.iter().position(|n| n == name) {
            return HistogramId(k);
        }
        self.hist_names.push(name.to_string());
        self.hists.push(Histogram::new());
        HistogramId(self.hists.len() - 1)
    }

    /// Adds to a counter — the entire hot-path cost is one `u64` add.
    #[inline]
    pub fn add(&mut self, id: CounterId, v: u64) {
        self.counters[id.0] += v;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0] = v;
    }

    /// Records a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        self.hists[id.0].record(v);
    }

    /// Overwrites a counter's value. Reporting-path only: lets a snapshot
    /// fold in totals kept elsewhere (e.g. connection-side atomics) while
    /// still merging additively across registries.
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0] = v;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0]
    }

    /// Read access to a histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Folds an externally maintained histogram into one of this
    /// registry's histograms (reporting path): lets a snapshot absorb
    /// sample distributions kept outside the registry — e.g. per-thread
    /// histograms behind a mutex — the same way `set_counter` absorbs
    /// external totals.
    pub fn merge_histogram(&mut self, id: HistogramId, other: &Histogram) {
        self.hists[id.0].merge(other);
    }

    /// Looks up a counter's current value by name (reporting path).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        let k = self.counter_names.iter().position(|n| n == name)?;
        Some(self.counters[k])
    }

    /// Looks up a gauge's current value by name (reporting path).
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        let k = self.gauge_names.iter().position(|n| n == name)?;
        Some(self.gauges[k])
    }

    /// Looks up a histogram by name (reporting path).
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        let k = self.hist_names.iter().position(|n| n == name)?;
        Some(&self.hists[k])
    }

    /// All counters in registration order.
    pub fn counters_iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .zip(self.counters.iter())
            .map(|(n, v)| (n.as_str(), *v))
    }

    /// All gauges in registration order.
    pub fn gauges_iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_names
            .iter()
            .zip(self.gauges.iter())
            .map(|(n, v)| (n.as_str(), *v))
    }

    /// All histograms in registration order.
    pub fn histograms_iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hist_names
            .iter()
            .zip(self.hists.iter())
            .map(|(n, h)| (n.as_str(), h))
    }

    /// Merges another registry into this one: counters and histogram
    /// samples add; gauges take the other's value when its name is shared
    /// (last writer wins) and are appended otherwise. Metric identity is by
    /// name, so differently-shaped registries merge correctly.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counter_names.iter().zip(other.counters.iter()) {
            let id = self.counter(name);
            self.counters[id.0] += v;
        }
        for (name, v) in other.gauge_names.iter().zip(other.gauges.iter()) {
            let id = self.gauge(name);
            self.gauges[id.0] = *v;
        }
        for (name, h) in other.hist_names.iter().zip(other.hists.iter()) {
            let id = self.histogram(name);
            self.hists[id.0].merge(h);
        }
    }
}

impl ToJson for MetricsRegistry {
    /// `{counters: {…}, gauges: {…}, histograms: {…}}` in registration
    /// order.
    fn to_json(&self) -> Json {
        let counters = Json::Object(
            self.counter_names
                .iter()
                .zip(self.counters.iter())
                .map(|(n, v)| (n.clone(), Json::U64(*v)))
                .collect(),
        );
        let gauges = Json::Object(
            self.gauge_names
                .iter()
                .zip(self.gauges.iter())
                .map(|(n, v)| (n.clone(), Json::F64(*v)))
                .collect(),
        );
        let hists = Json::Object(
            self.hist_names
                .iter()
                .zip(self.hists.iter())
                .map(|(n, h)| (n.clone(), h.to_json()))
                .collect(),
        );
        Json::object()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", hists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        assert_eq!(a, b);
        m.inc(a);
        m.add(b, 2);
        assert_eq!(m.counter_value(a), 3);
        assert_eq!(m.counter_by_name("x"), Some(3));
        assert_eq!(m.counter_by_name("y"), None);
    }

    #[test]
    fn merge_adds_counters_and_hist_samples() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let ca = a.counter("shared");
        a.add(ca, 5);
        let cb = b.counter("shared");
        b.add(cb, 7);
        let only_b = b.counter("only_b");
        b.inc(only_b);
        let hb = b.histogram("h");
        b.observe(hb, 9);
        let gb = b.gauge("g");
        b.set(gb, 1.5);

        a.merge(&b);
        assert_eq!(a.counter_by_name("shared"), Some(12));
        assert_eq!(a.counter_by_name("only_b"), Some(1));
        let h = a.histogram("h");
        assert_eq!(a.histogram_ref(h).count(), 1);
        let g = a.gauge("g");
        assert_eq!(a.gauge_value(g), 1.5);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut m = MetricsRegistry::new();
        let c = m.counter("c");
        m.inc(c);
        let g = m.gauge("g");
        m.set(g, 0.25);
        let rendered = m.to_json().render();
        assert_eq!(
            rendered,
            r#"{"counters":{"c":1},"gauges":{"g":0.25},"histograms":{}}"#
        );
    }
}
