//! A rolling window of per-epoch metric buckets.
//!
//! The serving plane needs *rates* ("QPS over the last ten seconds"), not
//! just lifetime totals. [`RollingWindow`] keeps a fixed ring of
//! [`MetricsRegistry`] buckets, one per epoch (the caller defines an epoch
//! — the server uses one second). Recording goes into the bucket for the
//! caller-supplied epoch number; buckets older than the window span decay
//! out automatically as newer epochs arrive, and [`RollingWindow::merged`]
//! folds the live buckets into one registry for reporting.
//!
//! The window never reads a clock: epochs are **injected** by the caller,
//! so the same sequence of `(epoch, record)` calls always produces the
//! same merged registry — the property the determinism tests pin down.
//! Memory is constant: `span` registries, reused in place.

use crate::MetricsRegistry;

/// A fixed ring of per-epoch [`MetricsRegistry`] buckets.
///
/// # Examples
///
/// ```
/// use ntp_telemetry::{RollingWindow, ToJson};
/// let mut w = RollingWindow::new(3);
/// for epoch in 0..5u64 {
///     let b = w.bucket_mut(epoch);
///     let c = b.counter("frames");
///     b.add(c, 10);
/// }
/// // Only epochs 2, 3, 4 are still inside the 3-epoch window.
/// assert_eq!(w.merged().counter_by_name("frames"), Some(30));
/// assert_eq!(w.live_epochs(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct RollingWindow {
    buckets: Vec<MetricsRegistry>,
    /// The epoch each slot currently holds (`None` until first written).
    epochs: Vec<Option<u64>>,
    /// The highest epoch seen so far (writes or [`RollingWindow::advance_to`]).
    newest: Option<u64>,
}

impl RollingWindow {
    /// Creates a window of `span` epoch buckets.
    ///
    /// # Panics
    ///
    /// Panics when `span` is zero (a window has to hold something).
    pub fn new(span: usize) -> RollingWindow {
        assert!(span > 0, "RollingWindow span must be >= 1");
        RollingWindow {
            buckets: vec![MetricsRegistry::new(); span],
            epochs: vec![None; span],
            newest: None,
        }
    }

    /// The number of epoch buckets the window spans.
    pub fn span(&self) -> usize {
        self.buckets.len()
    }

    /// The highest epoch observed so far (`None` before any write).
    pub fn newest_epoch(&self) -> Option<u64> {
        self.newest
    }

    /// Advances the window to `epoch` without recording anything: buckets
    /// that fall out of `[epoch - span + 1, epoch]` decay out of
    /// [`RollingWindow::merged`]. Epochs older than the current newest are
    /// ignored (the window never rolls backwards).
    pub fn advance_to(&mut self, epoch: u64) {
        if self.newest.is_none_or(|n| epoch > n) {
            self.newest = Some(epoch);
        }
    }

    /// The write bucket for `epoch`, rotating the ring as needed. An epoch
    /// that has already decayed out of the window is clamped to the oldest
    /// in-window bucket so late samples are never silently dropped (with a
    /// monotonic epoch source this never triggers).
    pub fn bucket_mut(&mut self, epoch: u64) -> &mut MetricsRegistry {
        self.advance_to(epoch);
        let newest = self.newest.expect("advance_to just set newest");
        let oldest = newest.saturating_sub(self.span() as u64 - 1);
        let e = epoch.max(oldest);
        let idx = (e % self.span() as u64) as usize;
        if self.epochs[idx] != Some(e) {
            self.buckets[idx] = MetricsRegistry::new();
            self.epochs[idx] = Some(e);
        }
        &mut self.buckets[idx]
    }

    /// Buckets currently inside the window that have been written.
    pub fn live_epochs(&self) -> usize {
        self.in_window().count()
    }

    /// True when nothing inside the window has been written.
    pub fn is_empty(&self) -> bool {
        self.live_epochs() == 0
    }

    /// Folds every live in-window bucket into one registry, in ascending
    /// epoch order (so metric registration order — and therefore the JSON
    /// serialization — is deterministic for a given record sequence).
    pub fn merged(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for idx in self.in_window() {
            out.merge(&self.buckets[idx]);
        }
        out
    }

    /// Slot indices of live in-window buckets, oldest epoch first.
    fn in_window(&self) -> impl Iterator<Item = usize> + '_ {
        let span = self.span() as u64;
        let newest = self.newest;
        let oldest = newest.map(|n| n.saturating_sub(span - 1));
        (0..span)
            .filter_map(move |off| {
                let (n, o) = (newest?, oldest?);
                let e = o + off;
                if e > n {
                    return None;
                }
                Some((e, (e % span) as usize))
            })
            .filter(|(e, idx)| self.epochs[*idx] == Some(*e))
            .map(|(_, idx)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ToJson;

    fn add(w: &mut RollingWindow, epoch: u64, name: &str, v: u64) {
        let b = w.bucket_mut(epoch);
        let c = b.counter(name);
        b.add(c, v);
    }

    #[test]
    fn empty_window_merges_to_nothing() {
        let w = RollingWindow::new(4);
        assert!(w.is_empty());
        assert_eq!(w.live_epochs(), 0);
        assert_eq!(w.newest_epoch(), None);
        assert_eq!(w.merged().counter_by_name("anything"), None);
    }

    #[test]
    fn buckets_rotate_out_as_epochs_advance() {
        let mut w = RollingWindow::new(3);
        add(&mut w, 0, "x", 1);
        add(&mut w, 1, "x", 2);
        add(&mut w, 2, "x", 4);
        assert_eq!(w.merged().counter_by_name("x"), Some(7));
        // Epoch 3 pushes epoch 0 out of the window.
        add(&mut w, 3, "x", 8);
        assert_eq!(w.merged().counter_by_name("x"), Some(14));
        assert_eq!(w.live_epochs(), 3);
        // A far jump leaves only the newest bucket.
        add(&mut w, 100, "x", 16);
        assert_eq!(w.merged().counter_by_name("x"), Some(16));
        assert_eq!(w.live_epochs(), 1);
        assert_eq!(w.newest_epoch(), Some(100));
    }

    #[test]
    fn merge_unions_counters_and_histograms_across_buckets() {
        let mut w = RollingWindow::new(8);
        for epoch in 0..4u64 {
            let b = w.bucket_mut(epoch);
            let c = b.counter("frames");
            b.add(c, epoch + 1);
            let h = b.histogram("lat");
            b.observe(h, epoch * 10);
        }
        let m = w.merged();
        assert_eq!(m.counter_by_name("frames"), Some(1 + 2 + 3 + 4));
        let mut probe = m.clone();
        let h = probe.histogram("lat");
        assert_eq!(probe.histogram_ref(h).count(), 4);
        assert_eq!(probe.histogram_ref(h).max(), 30);
    }

    #[test]
    fn saturated_window_holds_exactly_span_epochs() {
        let mut w = RollingWindow::new(4);
        for epoch in 0..100u64 {
            add(&mut w, epoch, "hits", 1);
        }
        assert_eq!(w.live_epochs(), 4);
        assert_eq!(w.merged().counter_by_name("hits"), Some(4));
    }

    #[test]
    fn advance_to_decays_without_writing() {
        let mut w = RollingWindow::new(3);
        add(&mut w, 0, "x", 1);
        add(&mut w, 1, "x", 1);
        w.advance_to(1); // no-op: not newer
        assert_eq!(w.merged().counter_by_name("x"), Some(2));
        w.advance_to(50); // everything decays out
        assert!(w.is_empty());
        assert_eq!(w.merged().counter_by_name("x"), None);
        assert_eq!(w.newest_epoch(), Some(50));
    }

    #[test]
    fn stale_epochs_clamp_into_the_oldest_live_bucket() {
        let mut w = RollingWindow::new(3);
        add(&mut w, 10, "x", 1);
        // Epoch 0 decayed long ago; the sample lands in the oldest
        // in-window bucket (epoch 8) instead of vanishing.
        add(&mut w, 0, "x", 5);
        assert_eq!(w.merged().counter_by_name("x"), Some(6));
        assert_eq!(w.newest_epoch(), Some(10));
    }

    #[test]
    fn injected_clock_sequences_are_deterministic() {
        let feed = |w: &mut RollingWindow| {
            for (epoch, v) in [(0u64, 3u64), (1, 1), (1, 2), (4, 9), (6, 1)] {
                add(w, epoch, "frames", v);
                let b = w.bucket_mut(epoch);
                let h = b.histogram("lat");
                b.observe(h, v * 7);
            }
            w.advance_to(7);
        };
        let mut a = RollingWindow::new(5);
        let mut b = RollingWindow::new(5);
        feed(&mut a);
        feed(&mut b);
        assert_eq!(
            a.merged().to_json().render(),
            b.merged().to_json().render(),
            "identical (epoch, record) sequences must merge identically"
        );
    }
}
