//! Locked / ordered progress reporting for parallel workers.
//!
//! `eprintln!` from several workers is line-atomic on most platforms but
//! provides no ordering, and multi-line summaries can interleave between
//! lines. [`Progress`] offers two disciplines:
//!
//! * [`Progress::line`] — immediate, whole-line output under one lock
//!   (never interleaves mid-line; order follows completion);
//! * [`Progress::submit`] — per-job chunks flushed strictly in job-index
//!   order: chunk `i` prints only after chunks `0..i`, so multi-line
//!   summaries read exactly as they do in a serial run.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::{Mutex, OnceLock};

enum Sink {
    Stderr,
    Buffer(Vec<u8>),
}

struct State {
    /// Next job index [`Progress::submit`] may flush.
    next: usize,
    /// Chunks that arrived out of order, keyed by job index.
    pending: BTreeMap<usize, String>,
    sink: Sink,
}

/// A locked, optionally ordered progress reporter (see module docs).
pub struct Progress {
    state: Mutex<State>,
}

impl Progress {
    /// A reporter writing to standard error.
    pub fn stderr() -> Progress {
        Progress::with_sink(Sink::Stderr)
    }

    /// A reporter writing to an internal buffer (tests).
    pub fn buffered() -> Progress {
        Progress::with_sink(Sink::Buffer(Vec::new()))
    }

    fn with_sink(sink: Sink) -> Progress {
        Progress {
            state: Mutex::new(State {
                next: 0,
                pending: BTreeMap::new(),
                sink,
            }),
        }
    }

    fn write(sink: &mut Sink, text: &str) {
        match sink {
            Sink::Stderr => {
                let mut err = std::io::stderr().lock();
                let _ = err.write_all(text.as_bytes());
                let _ = err.flush();
            }
            Sink::Buffer(buf) => buf.extend_from_slice(text.as_bytes()),
        }
    }

    /// Writes one whole line immediately (a trailing newline is added if
    /// missing). Concurrent callers serialize on the reporter's lock, so
    /// lines never interleave mid-line.
    pub fn line(&self, msg: &str) {
        let mut state = self.state.lock().expect("progress lock");
        let text = if msg.ends_with('\n') {
            msg.to_string()
        } else {
            format!("{msg}\n")
        };
        Self::write(&mut state.sink, &text);
    }

    /// Submits job `index`'s output chunk for ordered emission: it is
    /// written once every chunk with a smaller index has been written.
    /// Chunks may span multiple lines; a trailing newline is added if
    /// missing. Each index must be submitted exactly once, starting from 0
    /// per reporter (or per [`Progress::reset_order`] cycle).
    pub fn submit(&self, index: usize, chunk: String) {
        let mut state = self.state.lock().expect("progress lock");
        state.pending.insert(index, chunk);
        loop {
            let next = state.next;
            let Some(chunk) = state.pending.remove(&next) else {
                break;
            };
            let text = if chunk.is_empty() || chunk.ends_with('\n') {
                chunk
            } else {
                format!("{chunk}\n")
            };
            Self::write(&mut state.sink, &text);
            state.next += 1;
        }
    }

    /// Resets the ordered-emission cursor to 0 (for reporters reused across
    /// independent job batches). Any unflushed pending chunks are dropped.
    pub fn reset_order(&self) {
        let mut state = self.state.lock().expect("progress lock");
        state.next = 0;
        state.pending.clear();
    }

    /// Drains the buffered output (empty for stderr reporters). Test hook.
    pub fn take_buffer(&self) -> String {
        let mut state = self.state.lock().expect("progress lock");
        match &mut state.sink {
            Sink::Stderr => String::new(),
            Sink::Buffer(buf) => String::from_utf8_lossy(&std::mem::take(buf)).into_owned(),
        }
    }
}

/// The process-wide stderr reporter used by the capture/replay pipeline.
pub fn progress() -> &'static Progress {
    static GLOBAL: OnceLock<Progress> = OnceLock::new();
    GLOBAL.get_or_init(Progress::stderr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_flushes_in_index_order() {
        let p = Progress::buffered();
        p.submit(2, "third".into());
        p.submit(0, "first".into());
        assert_eq!(p.take_buffer(), "first\n");
        p.submit(1, "second\n".into());
        assert_eq!(p.take_buffer(), "second\nthird\n");
    }

    #[test]
    fn line_is_immediate_and_newline_terminated() {
        let p = Progress::buffered();
        p.line("working");
        p.line("done\n");
        assert_eq!(p.take_buffer(), "working\ndone\n");
    }

    #[test]
    fn reset_order_starts_a_new_batch() {
        let p = Progress::buffered();
        p.submit(0, "a".into());
        p.submit(1, "b".into());
        p.reset_order();
        p.submit(0, "c".into());
        assert_eq!(p.take_buffer(), "a\nb\nc\n");
    }

    #[test]
    fn concurrent_lines_never_interleave() {
        let p = Progress::buffered();
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = &p;
                s.spawn(move || {
                    for k in 0..50 {
                        p.line(&format!("worker-{t}-msg-{k}"));
                    }
                });
            }
        });
        let out = p.take_buffer();
        assert_eq!(out.lines().count(), 200);
        for l in out.lines() {
            assert!(l.starts_with("worker-") && l.contains("-msg-"), "{l}");
        }
    }

    #[test]
    fn global_reporter_is_shared() {
        let a = progress() as *const Progress;
        let b = progress() as *const Progress;
        assert_eq!(a, b);
    }
}
