//! # ntp-runner — zero-dependency parallel execution for capture/replay
//!
//! The evaluation pipeline is embarrassingly parallel at two levels — one
//! functional-simulation pass per benchmark, then dozens of independent
//! predictor replays over the same captured streams — but every consumer
//! needs **byte-identical output at any thread count**. This crate provides
//! the three pieces that make that cheap:
//!
//! * [`map_ordered`] — a scoped-thread worker pool (`std::thread::scope`,
//!   no external crates): jobs are identified by their index in the input
//!   slice, workers steal the next index from a shared atomic cursor, and
//!   results are merged back **in submission order**, so downstream
//!   formatting is independent of scheduling;
//! * [`thread_count`] / [`parse_env`] — the `NTP_THREADS` knob (default:
//!   available parallelism; `NTP_THREADS=1` forces the serial path, which
//!   spawns no threads at all) with validated, fail-fast env parsing;
//! * [`Progress`] — a locked/ordered progress reporter so that worker
//!   log lines never interleave mid-line and per-job summaries appear in
//!   submission order regardless of completion order.
//!
//! # Example
//!
//! ```
//! let squares = ntp_runner::map_ordered(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

mod env;
mod pool;
mod progress;

pub use env::{parse_env, thread_count};
pub use pool::{map_ordered, map_ordered_stats, map_ordered_with, RunStats};
pub use progress::{progress, Progress};
