//! The scoped-thread worker pool with ordered result merging.
//!
//! Jobs are the elements of an input slice; a job's identity is its index.
//! Workers pull the next unclaimed index from a shared atomic cursor
//! (work-stealing over a flat queue), run the job closure, and keep
//! `(index, result)` pairs locally. After the scope joins, results are
//! merged back into a `Vec` in **submission order**, so callers that format
//! output from the result vector produce byte-identical text at any thread
//! count.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Scheduling statistics for one [`map_ordered_stats`] run.
///
/// `busy` sums the wall-clock time spent inside job closures across all
/// workers, so `busy / wall` estimates the parallel speedup actually
/// realised versus running the same jobs serially (on an unloaded machine
/// the serial run would take ≈ `busy`).
///
/// **Caveat:** `busy` is thread *residency*, not CPU time (std has no
/// portable per-thread CPU clock). When the pool is oversubscribed —
/// more workers than available cores — descheduled time counts as busy
/// and inflates [`RunStats::speedup`]. Trust the estimate only when
/// `threads` ≤ physical cores; cross-check against the end-to-end wall
/// clock of a `NTP_THREADS=1` run when it matters.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Worker threads used (1 = serial path, no threads spawned).
    pub threads: usize,
    /// Wall-clock time from first claim to last merge.
    pub wall: Duration,
    /// Total time spent inside job closures, summed over workers.
    pub busy: Duration,
}

impl RunStats {
    /// Estimated speedup versus a serial run of the same jobs
    /// (`busy / wall`; 1.0 when `wall` is zero).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / wall
        }
    }

    /// Items per wall-clock second (0.0 for zero wall time).
    pub fn per_sec(&self, count: u64) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            count as f64 / wall
        }
    }
}

/// [`map_ordered_with`] at the [`crate::thread_count`] pool width.
pub fn map_ordered<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_ordered_with(crate::thread_count(), items, f)
}

/// [`map_ordered_stats`] discarding the statistics.
pub fn map_ordered_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_ordered_stats(threads, items, f).0
}

/// Runs `f(index, &items[index])` for every item on a pool of `threads`
/// scoped workers and returns the results in input order, plus scheduling
/// statistics.
///
/// * `threads <= 1` (or one item) takes the serial path: plain in-order
///   iteration on the calling thread, no threads spawned, no atomics.
/// * Otherwise `min(threads, items.len())` workers race a shared cursor.
///
/// The result vector is **identical** (not just equivalent) to the serial
/// `items.iter().enumerate().map(..)` for any thread count, as long as `f`
/// is a pure function of its arguments.
///
/// # Panics
///
/// Propagates the first worker panic after all workers have stopped.
pub fn map_ordered_stats<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, RunStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = Instant::now();
    if threads <= 1 || items.len() <= 1 {
        let results: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let wall = start.elapsed();
        return (
            results,
            RunStats {
                jobs: items.len(),
                threads: 1,
                wall,
                busy: wall,
            },
        );
    }

    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let per_worker: Vec<(Vec<(usize, R)>, Duration)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut busy = Duration::ZERO;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let t0 = Instant::now();
                        let r = f(i, &items[i]);
                        busy += t0.elapsed();
                        out.push((i, r));
                    }
                    (out, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut busy = Duration::ZERO;
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (pairs, worker_busy) in per_worker {
        busy += worker_busy;
        for (i, r) in pairs {
            debug_assert!(slots[i].is_none(), "job {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    let results = slots
        .into_iter()
        .map(|r| r.expect("every job index claimed exactly once"))
        .collect();
    (
        results,
        RunStats {
            jobs: items.len(),
            threads: workers,
            wall: start.elapsed(),
            busy,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ordered_merge_equals_serial_map_at_1_2_and_8_threads() {
        let items: Vec<u64> = (0..103).collect();
        let f = |i: usize, &x: &u64| -> u64 {
            // Index-dependent so a merge bug cannot cancel out.
            x.wrapping_mul(2654435761).rotate_left((i % 63) as u32) ^ i as u64
        };
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for threads in [1usize, 2, 8] {
            let (got, stats) = map_ordered_stats(threads, &items, f);
            assert_eq!(got, serial, "threads={threads}");
            assert_eq!(stats.jobs, items.len());
            assert!(stats.threads <= threads.max(1));
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = map_ordered_with(4, &items, |i, &x| {
            hits.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 57);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let (out, stats) = map_ordered_stats(4, &empty, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.threads, 1, "nothing to parallelise");

        let one = [7u32];
        assert_eq!(map_ordered_with(8, &one, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let result = panic::catch_unwind(|| {
            map_ordered_with(4, &items, |_, &x| {
                if x == 9 {
                    panic!("job 9 exploded");
                }
                x
            })
        });
        assert!(result.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn stats_are_sane() {
        let items: Vec<u32> = (0..8).collect();
        let (_, stats) = map_ordered_stats(2, &items, |_, &x| {
            std::thread::sleep(Duration::from_millis(1));
            x
        });
        assert_eq!(stats.jobs, 8);
        assert!(stats.busy >= Duration::from_millis(8));
        assert!(stats.speedup() > 0.0);
        assert!(stats.per_sec(8) > 0.0);
        assert_eq!(stats.per_sec(0), 0.0);
    }
}
