//! Validated environment-variable parsing and the `NTP_THREADS` knob.

use std::str::FromStr;

/// Reads and parses an environment variable, failing fast on malformed
/// values.
///
/// Returns `None` when the variable is unset (callers supply their own
/// default) and `Some(value)` when it parses. This is the shared helper
/// behind every numeric `NTP_*` knob (`NTP_THREADS`, `NTP_INSTR_BUDGET`):
/// a typo'd value must abort with a clear message, never silently fall
/// back to the default and quietly produce a differently-sized run.
///
/// # Panics
///
/// Panics with a message naming the variable and the offending value if it
/// is set but does not parse as `T`.
///
/// # Examples
///
/// An unset variable yields `None` — this path is deterministic and
/// touches no process state, so it is safe to execute even under the
/// parallel doctest harness:
///
/// ```
/// assert_eq!(ntp_runner::parse_env::<u64>("NTP_DOCTEST_NEVER_SET"), None);
/// ```
///
/// A set variable parses into the requested type. Mutating the process
/// environment races against concurrently executing doctests, so this
/// variant is compiled but deliberately not run (the executed coverage
/// lives in this module's serial unit test):
///
/// ```no_run
/// std::env::set_var("NTP_THREADS", "4");
/// assert_eq!(ntp_runner::parse_env::<u64>("NTP_THREADS"), Some(4));
/// ```
pub fn parse_env<T: FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => panic!(
            "{name} must be a {}, got `{raw}` (unset it to use the default)",
            std::any::type_name::<T>()
        ),
    }
}

/// The worker-pool width: `NTP_THREADS` if set, otherwise the machine's
/// available parallelism (1 if that cannot be determined).
///
/// `NTP_THREADS=1` forces the fully serial path — [`crate::map_ordered`]
/// then spawns no threads at all, which is also the reference behaviour the
/// determinism checks compare against.
///
/// # Panics
///
/// Panics if `NTP_THREADS` is set but malformed or zero.
pub fn thread_count() -> usize {
    match parse_env::<usize>("NTP_THREADS") {
        Some(0) => panic!("NTP_THREADS must be >= 1 (use 1 to force the serial path)"),
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var tests mutate process state; keep them in one test so they
    // cannot race each other under the parallel test harness.
    #[test]
    fn parse_env_reads_validates_and_defaults() {
        std::env::remove_var("NTP_RUNNER_TEST_KNOB");
        assert_eq!(parse_env::<u64>("NTP_RUNNER_TEST_KNOB"), None);

        std::env::set_var("NTP_RUNNER_TEST_KNOB", " 17 ");
        assert_eq!(parse_env::<u64>("NTP_RUNNER_TEST_KNOB"), Some(17));

        std::env::set_var("NTP_RUNNER_TEST_KNOB", "4threads");
        let err = std::panic::catch_unwind(|| parse_env::<u64>("NTP_RUNNER_TEST_KNOB"))
            .expect_err("malformed value must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("NTP_RUNNER_TEST_KNOB") && msg.contains("4threads"),
            "message names the variable and value: {msg}"
        );
        std::env::remove_var("NTP_RUNNER_TEST_KNOB");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
