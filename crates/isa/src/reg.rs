//! Architectural registers of the TRISC ISA.

use std::fmt;

/// One of the 32 architectural registers, `r0`–`r31`.
///
/// `r0` is hardwired to zero. The software calling convention mirrors MIPS:
/// `v0`/`v1` (`r2`/`r3`) hold return values, `a0`–`a3` (`r4`–`r7`) hold
/// arguments, `t0`–`t9` are caller-saved, `s0`–`s7` are callee-saved,
/// `sp` = `r30`, `fp` = `r29`, `ra` = `r31`.
///
/// # Examples
///
/// ```
/// use ntp_isa::Reg;
/// let a0 = Reg::from_name("a0").unwrap();
/// assert_eq!(a0, Reg::new(4).unwrap());
/// assert_eq!(a0.name(), "a0");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// First return-value register `v0` (`r2`).
    pub const V0: Reg = Reg(2);
    /// Second return-value register `v1` (`r3`).
    pub const V1: Reg = Reg(3);
    /// First argument register `a0` (`r4`).
    pub const A0: Reg = Reg(4);
    /// Second argument register `a1` (`r5`).
    pub const A1: Reg = Reg(5);
    /// Third argument register `a2` (`r6`).
    pub const A2: Reg = Reg(6);
    /// Fourth argument register `a3` (`r7`).
    pub const A3: Reg = Reg(7);
    /// Frame pointer `fp` (`r29`).
    pub const FP: Reg = Reg(29);
    /// Stack pointer `sp` (`r30`).
    pub const SP: Reg = Reg(30);
    /// Return-address register `ra` (`r31`); `jal`/`jalr` write it, `jr ra` returns.
    pub const RA: Reg = Reg(31);

    /// Creates a register from its number, returning `None` if `n >= 32`.
    pub fn new(n: u8) -> Option<Reg> {
        (n < 32).then_some(Reg(n))
    }

    /// Creates a register from its number without bounds checking the value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n >= 32`; in release builds the value is
    /// masked to 5 bits.
    pub fn new_masked(n: u8) -> Reg {
        debug_assert!(n < 32, "register number out of range: {n}");
        Reg(n & 31)
    }

    /// The register number, 0–31.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// The register number as a `usize`, for register-file indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Looks up a register by name: `r12`, or an ABI alias like `a0`/`sp`/`ra`.
    pub fn from_name(name: &str) -> Option<Reg> {
        if let Some(rest) = name.strip_prefix('r') {
            if let Ok(n) = rest.parse::<u8>() {
                return Reg::new(n);
            }
        }
        let n = match name {
            "zero" => 0,
            "at" => 1,
            "v0" => 2,
            "v1" => 3,
            "a0" => 4,
            "a1" => 5,
            "a2" => 6,
            "a3" => 7,
            "t0" => 8,
            "t1" => 9,
            "t2" => 10,
            "t3" => 11,
            "t4" => 12,
            "t5" => 13,
            "t6" => 14,
            "t7" => 15,
            "s0" => 16,
            "s1" => 17,
            "s2" => 18,
            "s3" => 19,
            "s4" => 20,
            "s5" => 21,
            "s6" => 22,
            "s7" => 23,
            "t8" => 24,
            "t9" => 25,
            "k0" => 26,
            "k1" => 27,
            "gp" => 28,
            "fp" => 29,
            "sp" => 30,
            "ra" => 31,
            _ => return None,
        };
        Some(Reg(n))
    }

    /// The canonical ABI name of this register.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2", "t3", "t4", "t5",
            "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "t8", "t9", "k0", "k1",
            "gp", "fp", "sp", "ra",
        ];
        NAMES[self.index()]
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({}={})", self.0, self.name())
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_names_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_name(&format!("r{}", r.number())), Some(r));
        }
    }

    #[test]
    fn abi_names_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_name(r.name()), Some(r), "alias {}", r.name());
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::from_name("r32"), None);
        assert_eq!(Reg::from_name("x5"), None);
        assert_eq!(Reg::from_name(""), None);
    }

    #[test]
    fn well_known_aliases() {
        assert_eq!(Reg::from_name("sp"), Some(Reg::SP));
        assert_eq!(Reg::from_name("ra"), Some(Reg::RA));
        assert_eq!(Reg::from_name("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::SP.number(), 30);
        assert_eq!(Reg::RA.number(), 31);
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::ZERO.to_string(), "zero");
    }
}
