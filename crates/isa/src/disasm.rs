//! Disassembly of encoded instruction words back to assembly text.

use crate::{decode, DecodeError, Instr};

/// Disassembles a single instruction word at address `pc`.
///
/// Branch and jump targets are rendered as absolute hexadecimal addresses,
/// which requires knowing `pc`.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid instruction.
///
/// ```
/// use ntp_isa::{encode, Instr, Reg, disasm::disassemble_at};
/// let w = encode(&Instr::Beq(Reg::V0, Reg::ZERO, 3));
/// assert_eq!(disassemble_at(w, 0x100).unwrap(), "beq v0, zero, 0x110");
/// ```
pub fn disassemble_at(word: u32, pc: u32) -> Result<String, DecodeError> {
    let instr = decode(word)?;
    Ok(render(&instr, pc))
}

/// Renders a decoded instruction at address `pc`, resolving direct targets to
/// absolute addresses.
pub fn render(instr: &Instr, pc: u32) -> String {
    match instr.direct_target(pc) {
        Some(target) => {
            let m = instr.mnemonic();
            match instr {
                Instr::Beq(s, t, _)
                | Instr::Bne(s, t, _)
                | Instr::Blt(s, t, _)
                | Instr::Bge(s, t, _)
                | Instr::Bltu(s, t, _)
                | Instr::Bgeu(s, t, _) => format!("{m} {s}, {t}, 0x{target:x}"),
                _ => format!("{m} 0x{target:x}"),
            }
        }
        None => instr.to_string(),
    }
}

/// Disassembles a contiguous block of instruction words beginning at `base`,
/// one line per word, including addresses.
///
/// Undecodable words render as `.word 0x????????`.
pub fn disassemble_block(words: &[u32], base: u32) -> String {
    let mut out = String::new();
    for (n, &w) in words.iter().enumerate() {
        let pc = base + (n as u32) * 4;
        let text = disassemble_at(w, pc).unwrap_or_else(|_| format!(".word 0x{w:08x}"));
        out.push_str(&format!("{pc:08x}:  {text}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode, Reg};

    #[test]
    fn renders_branch_targets_absolutely() {
        let i = Instr::Bne(Reg::A0, Reg::ZERO, -1);
        assert_eq!(render(&i, 0x200), "bne a0, zero, 0x200");
    }

    #[test]
    fn renders_jump_targets() {
        let i = Instr::Jal(0x100);
        assert_eq!(render(&i, 0x0), "jal 0x400");
    }

    #[test]
    fn block_disassembly_includes_bad_words() {
        let words = vec![encode(&Instr::Halt), 0xFFFF_FFFF];
        let text = disassemble_block(&words, 0x400000);
        assert!(text.contains("halt"));
        assert!(text.contains(".word 0xffffffff"));
        assert!(text.contains("00400004"));
    }
}
