//! Two-pass assembler for TRISC assembly source.
//!
//! # Syntax
//!
//! ```text
//! ; comment        # comment        // comment
//!         .text                ; switch to the text section (default)
//!         .data                ; switch to the data section
//!         .align 2             ; align data to 2^n bytes
//! main:   addi  a0, zero, 10   ; labels end with ':'
//!         la    t0, table      ; pseudo: lui+ori
//!         lw    t1, 4(t0)      ; memory operands are off(base)
//!         beqz  t1, done       ; pseudo branches
//!         jal   helper
//! done:   halt
//! table:  .word 1, 2, -3, done ; words may reference labels
//! buf:    .space 64
//! msg:    .asciiz "hi"
//! ```
//!
//! Pseudo-instructions: `nop`, `move`, `li`, `la`, `b`, `call`, `ret`, `not`,
//! `neg`, `subi`, `bgt`, `ble`, `bgtu`, `bleu`, `beqz`, `bnez`, `bltz`,
//! `bgez`, `blez`, `bgtz`, `jalr rs` (implicit `ra` destination).
//! Relocation operators `%hi(sym)`/`%lo(sym)` work in `lui`/`ori`/`addi` and
//! memory offsets.

use crate::program::{DATA_BASE, TEXT_BASE};
use crate::{Instr, Program, Reg};
use std::collections::HashMap;
use std::fmt;

/// Error produced while assembling, with a 1-based source line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number the error occurred on.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Section bases used when assembling.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AsmOptions {
    /// Base address of the text segment.
    pub text_base: u32,
    /// Base address of the data segment.
    pub data_base: u32,
}

impl Default for AsmOptions {
    fn default() -> AsmOptions {
        AsmOptions {
            text_base: TEXT_BASE,
            data_base: DATA_BASE,
        }
    }
}

/// Assembles source text into a [`Program`] with the default layout.
///
/// Execution starts at the `main` label if one is defined, otherwise at the
/// first instruction.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics/registers, duplicate or undefined labels, and
/// out-of-range immediates or branch offsets.
///
/// ```
/// use ntp_isa::asm::assemble;
/// let p = assemble("loop: addi v0, v0, 1\n bne v0, a0, loop\n halt\n")?;
/// assert_eq!(p.instrs.len(), 3);
/// # Ok::<(), ntp_isa::asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    assemble_with(src, &AsmOptions::default())
}

/// Assembles with explicit section base addresses.
///
/// # Errors
///
/// As for [`assemble`].
pub fn assemble_with(src: &str, opts: &AsmOptions) -> Result<Program, AsmError> {
    Assembler::new(*opts).run(src)
}

// ---------------------------------------------------------------------------
// expressions
// ---------------------------------------------------------------------------

/// A symbolic expression awaiting label resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Expr {
    Const(i64),
    /// symbol + addend
    Sym(String, i64),
    Hi(Box<Expr>),
    Lo(Box<Expr>),
}

impl Expr {
    fn eval(&self, symbols: &HashMap<String, u32>) -> Result<i64, String> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Sym(name, add) => symbols
                .get(name)
                .map(|&a| a as i64 + add)
                .ok_or_else(|| format!("undefined label `{name}`")),
            Expr::Hi(e) => Ok(((e.eval(symbols)? as u32) >> 16) as i64),
            Expr::Lo(e) => Ok(((e.eval(symbols)? as u32) & 0xFFFF) as i64),
        }
    }

    fn plus(self, rhs: Expr, line: usize) -> Result<Expr, AsmError> {
        match (self, rhs) {
            (Expr::Const(a), Expr::Const(b)) => Ok(Expr::Const(a + b)),
            (Expr::Sym(s, a), Expr::Const(b)) | (Expr::Const(b), Expr::Sym(s, a)) => {
                Ok(Expr::Sym(s, a + b))
            }
            _ => Err(err(line, "unsupported expression arithmetic")),
        }
    }
}

// ---------------------------------------------------------------------------
// pending (pass-2) instructions
// ---------------------------------------------------------------------------

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum BrOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ImmOp {
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Sltiu,
    Lw,
    Lh,
    Lhu,
    Lb,
    Lbu,
    Sw,
    Sh,
    Sb,
}

impl ImmOp {
    fn signed(self) -> bool {
        !matches!(self, ImmOp::Andi | ImmOp::Ori | ImmOp::Xori)
    }

    fn build(self, a: Reg, b: Reg, v: i64) -> Instr {
        let s = v as i16;
        let u = v as u16;
        match self {
            ImmOp::Addi => Instr::Addi(a, b, s),
            ImmOp::Andi => Instr::Andi(a, b, u),
            ImmOp::Ori => Instr::Ori(a, b, u),
            ImmOp::Xori => Instr::Xori(a, b, u),
            ImmOp::Slti => Instr::Slti(a, b, s),
            ImmOp::Sltiu => Instr::Sltiu(a, b, s),
            ImmOp::Lw => Instr::Lw(a, b, s),
            ImmOp::Lh => Instr::Lh(a, b, s),
            ImmOp::Lhu => Instr::Lhu(a, b, s),
            ImmOp::Lb => Instr::Lb(a, b, s),
            ImmOp::Lbu => Instr::Lbu(a, b, s),
            ImmOp::Sw => Instr::Sw(a, b, s),
            ImmOp::Sh => Instr::Sh(a, b, s),
            ImmOp::Sb => Instr::Sb(a, b, s),
        }
    }
}

#[derive(Clone, Debug)]
enum PInstr {
    Ready(Instr),
    Br(BrOp, Reg, Reg, Expr),
    Jmp { link: bool, target: Expr },
    WithImm(ImmOp, Reg, Reg, Expr),
    Lui(Reg, Expr),
}

#[derive(Clone, Debug)]
enum DataItem {
    Word(Expr),
    Half(Expr),
    Byte(Expr),
    Space(u32),
    Bytes(Vec<u8>),
    Align(u32),
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

// ---------------------------------------------------------------------------
// tokenizer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(Vec<u8>),
    Punct(char),
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_str {
            if c == '\\' {
                i += 1;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == ';' || c == '#' || (c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/')
        {
            return &line[..i];
        }
        i += 1;
    }
    line
}

fn unescape(c: char) -> u8 {
    match c {
        'n' => b'\n',
        't' => b'\t',
        'r' => b'\r',
        '0' => 0,
        other => other as u8,
    }
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>, AsmError> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c.is_ascii_alphabetic() || c == '_' || c == '.' {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                    s.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Ident(s));
        } else if c.is_ascii_digit() {
            toks.push(Tok::Int(lex_number(&mut chars, lineno)?));
        } else if c == '\'' {
            chars.next();
            let mut v = chars
                .next()
                .ok_or_else(|| err(lineno, "unterminated char literal"))?;
            if v == '\\' {
                v = chars
                    .next()
                    .ok_or_else(|| err(lineno, "unterminated char literal"))?;
                v = unescape(v) as char;
            }
            if chars.next() != Some('\'') {
                return Err(err(lineno, "unterminated char literal"));
            }
            toks.push(Tok::Int(v as i64));
        } else if c == '"' {
            chars.next();
            let mut bytes = Vec::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some('\\') => {
                        let e = chars
                            .next()
                            .ok_or_else(|| err(lineno, "unterminated string"))?;
                        bytes.push(unescape(e));
                    }
                    Some(ch) => bytes.push(ch as u8),
                    None => return Err(err(lineno, "unterminated string")),
                }
            }
            toks.push(Tok::Str(bytes));
        } else if "(),:%+-".contains(c) {
            chars.next();
            toks.push(Tok::Punct(c));
        } else {
            return Err(err(lineno, format!("unexpected character `{c}`")));
        }
    }
    Ok(toks)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    lineno: usize,
) -> Result<i64, AsmError> {
    let mut s = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    let s = s.replace('_', "");
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else if let Some(bin) = s.strip_prefix("0b").or_else(|| s.strip_prefix("0B")) {
        u64::from_str_radix(bin, 2).map(|v| v as i64)
    } else {
        s.parse::<i64>()
    };
    parsed.map_err(|_| err(lineno, format!("bad number `{s}`")))
}

// ---------------------------------------------------------------------------
// operand parser
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Operand {
    Reg(Reg),
    Expr(Expr),
    Mem(Expr, Reg),
}

struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), AsmError> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(err(self.line, format!("expected `{c}`")))
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn parse_primary(&mut self) -> Result<Expr, AsmError> {
        let line = self.line;
        if self.eat_punct('-') {
            let e = self.parse_primary()?;
            return match e {
                Expr::Const(v) => Ok(Expr::Const(-v)),
                _ => Err(err(line, "cannot negate a symbol")),
            };
        }
        if self.eat_punct('%') {
            let name = match self.next() {
                Some(Tok::Ident(s)) => s.clone(),
                _ => return Err(err(line, "expected hi/lo after `%`")),
            };
            self.expect_punct('(')?;
            let inner = self.parse_expr()?;
            self.expect_punct(')')?;
            return match name.as_str() {
                "hi" => Ok(Expr::Hi(Box::new(inner))),
                "lo" => Ok(Expr::Lo(Box::new(inner))),
                other => Err(err(line, format!("unknown relocation `%{other}`"))),
            };
        }
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Const(*v)),
            Some(Tok::Ident(s)) => Ok(Expr::Sym(s.clone(), 0)),
            _ => Err(err(line, "expected expression")),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, AsmError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_punct('+') {
                let rhs = self.parse_primary()?;
                e = e.plus(rhs, self.line)?;
            } else if self.eat_punct('-') {
                let rhs = self.parse_primary()?;
                let rhs = match rhs {
                    Expr::Const(v) => Expr::Const(-v),
                    _ => return Err(err(self.line, "cannot subtract a symbol")),
                };
                e = e.plus(rhs, self.line)?;
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn parse_operand(&mut self) -> Result<Operand, AsmError> {
        let line = self.line;
        // Register?
        if let Some(Tok::Ident(s)) = self.peek() {
            if let Some(r) = Reg::from_name(s) {
                self.pos += 1;
                return Ok(Operand::Reg(r));
            }
        }
        // `(reg)` with implicit zero offset.
        if self.peek() == Some(&Tok::Punct('(')) {
            self.pos += 1;
            let r = self.parse_reg()?;
            self.expect_punct(')')?;
            return Ok(Operand::Mem(Expr::Const(0), r));
        }
        let e = self.parse_expr()?;
        if self.eat_punct('(') {
            let r = self.parse_reg()?;
            self.expect_punct(')')?;
            return Ok(Operand::Mem(e, r));
        }
        let _ = line;
        Ok(Operand::Expr(e))
    }

    fn parse_reg(&mut self) -> Result<Reg, AsmError> {
        match self.next() {
            Some(Tok::Ident(s)) => {
                Reg::from_name(s).ok_or_else(|| err(self.line, format!("unknown register `{s}`")))
            }
            _ => Err(err(self.line, "expected register")),
        }
    }

    fn parse_operands(&mut self) -> Result<Vec<Operand>, AsmError> {
        let mut ops = Vec::new();
        if self.at_end() {
            return Ok(ops);
        }
        loop {
            ops.push(self.parse_operand()?);
            if !self.eat_punct(',') {
                break;
            }
        }
        if !self.at_end() {
            return Err(err(self.line, "trailing tokens after operands"));
        }
        Ok(ops)
    }
}

// ---------------------------------------------------------------------------
// the assembler proper
// ---------------------------------------------------------------------------

#[derive(Copy, Clone, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

struct Assembler {
    opts: AsmOptions,
    section: Section,
    text: Vec<(usize, PInstr)>,
    data: Vec<(usize, DataItem)>,
    symbols: HashMap<String, u32>,
    data_len: u32,
}

impl Assembler {
    fn new(opts: AsmOptions) -> Assembler {
        Assembler {
            opts,
            section: Section::Text,
            text: Vec::new(),
            data: Vec::new(),
            symbols: HashMap::new(),
            data_len: 0,
        }
    }

    fn run(mut self, src: &str) -> Result<Program, AsmError> {
        // Pass 1: parse everything, assign addresses, collect symbols.
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw);
            let toks = tokenize(line, lineno)?;
            self.line(&toks, lineno)?;
        }

        // Pass 2: resolve expressions and emit.
        let mut program = Program {
            text_base: self.opts.text_base,
            instrs: Vec::with_capacity(self.text.len()),
            data_base: self.opts.data_base,
            data: Vec::with_capacity(self.data_len as usize),
            entry: self.opts.text_base,
            symbols: self.symbols,
        };

        for (n, (lineno, pi)) in self.text.iter().enumerate() {
            let pc = self.opts.text_base + (n as u32) * 4;
            let instr = emit(pi, pc, &program.symbols, *lineno)?;
            program.instrs.push(instr);
        }

        for (lineno, item) in &self.data {
            emit_data(item, &mut program.data, &program.symbols, *lineno)?;
        }
        debug_assert_eq!(program.data.len() as u32, self.data_len);

        if let Some(&main) = program.symbols.get("main") {
            program.entry = main;
        }
        Ok(program)
    }

    fn here(&self) -> u32 {
        match self.section {
            Section::Text => self.opts.text_base + (self.text.len() as u32) * 4,
            Section::Data => self.opts.data_base + self.data_len,
        }
    }

    fn line(&mut self, toks: &[Tok], lineno: usize) -> Result<(), AsmError> {
        let mut pos = 0;
        // Labels.
        while pos + 1 < toks.len() + 1 {
            if let (Some(Tok::Ident(name)), Some(Tok::Punct(':'))) =
                (toks.get(pos), toks.get(pos + 1))
            {
                if Reg::from_name(name).is_some() {
                    return Err(err(lineno, format!("label `{name}` shadows a register")));
                }
                let addr = self.here();
                if self.symbols.insert(name.clone(), addr).is_some() {
                    return Err(err(lineno, format!("duplicate label `{name}`")));
                }
                pos += 2;
            } else {
                break;
            }
        }
        let rest = &toks[pos..];
        if rest.is_empty() {
            return Ok(());
        }
        let head = match &rest[0] {
            Tok::Ident(s) => s.clone(),
            _ => return Err(err(lineno, "expected mnemonic or directive")),
        };
        let mut cur = Cursor {
            toks: &rest[1..],
            pos: 0,
            line: lineno,
        };
        if head.starts_with('.') {
            self.directive(&head, &mut cur)
        } else {
            self.instruction(&head, &mut cur)
        }
    }

    fn directive(&mut self, name: &str, cur: &mut Cursor<'_>) -> Result<(), AsmError> {
        let line = cur.line;
        match name {
            ".text" => {
                self.section = Section::Text;
                Ok(())
            }
            ".data" => {
                self.section = Section::Data;
                Ok(())
            }
            ".globl" | ".global" | ".ent" | ".end" => {
                // Accepted for compatibility; we export all labels anyway.
                while cur.next().is_some() {}
                Ok(())
            }
            ".word" | ".half" | ".byte" => {
                if self.section != Section::Data {
                    return Err(err(line, format!("`{name}` outside .data")));
                }
                let (size, make): (u32, fn(Expr) -> DataItem) = match name {
                    ".word" => (4, DataItem::Word),
                    ".half" => (2, DataItem::Half),
                    _ => (1, DataItem::Byte),
                };
                loop {
                    let e = cur.parse_expr()?;
                    self.data.push((line, make(e)));
                    self.data_len += size;
                    if !cur.eat_punct(',') {
                        break;
                    }
                }
                if !cur.at_end() {
                    return Err(err(line, "trailing tokens"));
                }
                Ok(())
            }
            ".space" => {
                if self.section != Section::Data {
                    return Err(err(line, "`.space` outside .data"));
                }
                let n = const_expr(cur, line)?;
                if !(0..=(64 << 20)).contains(&n) {
                    return Err(err(line, "unreasonable .space size"));
                }
                self.data.push((line, DataItem::Space(n as u32)));
                self.data_len += n as u32;
                Ok(())
            }
            ".align" => {
                if self.section != Section::Data {
                    return Err(err(line, "`.align` outside .data"));
                }
                let n = const_expr(cur, line)?;
                if !(0..=16).contains(&n) {
                    return Err(err(line, "alignment out of range"));
                }
                let align = 1u32 << n;
                let here = self.data_len;
                let pad = (align - (here % align)) % align;
                self.data.push((line, DataItem::Align(pad)));
                self.data_len += pad;
                Ok(())
            }
            ".ascii" | ".asciiz" => {
                if self.section != Section::Data {
                    return Err(err(line, format!("`{name}` outside .data")));
                }
                let mut bytes = match cur.next() {
                    Some(Tok::Str(b)) => b.clone(),
                    _ => return Err(err(line, "expected string literal")),
                };
                if name == ".asciiz" {
                    bytes.push(0);
                }
                self.data_len += bytes.len() as u32;
                self.data.push((line, DataItem::Bytes(bytes)));
                if !cur.at_end() {
                    return Err(err(line, "trailing tokens"));
                }
                Ok(())
            }
            other => Err(err(line, format!("unknown directive `{other}`"))),
        }
    }

    fn push(&mut self, line: usize, pi: PInstr) -> Result<(), AsmError> {
        if self.section != Section::Text {
            return Err(err(line, "instruction outside .text"));
        }
        self.text.push((line, pi));
        Ok(())
    }

    fn instruction(&mut self, m: &str, cur: &mut Cursor<'_>) -> Result<(), AsmError> {
        let line = cur.line;
        let ops = cur.parse_operands()?;
        let pis = lower(m, &ops, line)?;
        for pi in pis {
            self.push(line, pi)?;
        }
        Ok(())
    }
}

fn const_expr(cur: &mut Cursor<'_>, line: usize) -> Result<i64, AsmError> {
    let e = cur.parse_expr()?;
    if !cur.at_end() {
        return Err(err(line, "trailing tokens"));
    }
    match e {
        Expr::Const(v) => Ok(v),
        _ => Err(err(line, "expected a constant")),
    }
}

// ---------------------------------------------------------------------------
// mnemonic lowering (including pseudo-instructions)
// ---------------------------------------------------------------------------

fn want_regs3(ops: &[Operand], line: usize) -> Result<(Reg, Reg, Reg), AsmError> {
    match ops {
        [Operand::Reg(a), Operand::Reg(b), Operand::Reg(c)] => Ok((*a, *b, *c)),
        _ => Err(err(line, "expected three registers")),
    }
}

fn want_regs2(ops: &[Operand], line: usize) -> Result<(Reg, Reg), AsmError> {
    match ops {
        [Operand::Reg(a), Operand::Reg(b)] => Ok((*a, *b)),
        _ => Err(err(line, "expected two registers")),
    }
}

fn want_rr_expr(ops: &[Operand], line: usize) -> Result<(Reg, Reg, Expr), AsmError> {
    match ops {
        [Operand::Reg(a), Operand::Reg(b), Operand::Expr(e)] => Ok((*a, *b, e.clone())),
        _ => Err(err(line, "expected reg, reg, expression")),
    }
}

fn want_r_expr(ops: &[Operand], line: usize) -> Result<(Reg, Expr), AsmError> {
    match ops {
        [Operand::Reg(a), Operand::Expr(e)] => Ok((*a, e.clone())),
        _ => Err(err(line, "expected reg, expression")),
    }
}

fn want_mem(ops: &[Operand], line: usize) -> Result<(Reg, Reg, Expr), AsmError> {
    match ops {
        [Operand::Reg(a), Operand::Mem(e, b)] => Ok((*a, *b, e.clone())),
        // Also accept `lw rd, sym` as absolute addressing via r0? Reject: explicit is better.
        _ => Err(err(line, "expected reg, offset(base)")),
    }
}

fn lower(m: &str, ops: &[Operand], line: usize) -> Result<Vec<PInstr>, AsmError> {
    use PInstr::*;
    let one = |pi: PInstr| Ok(vec![pi]);
    match m {
        // ---- real three-register ALU ----
        "add" | "sub" | "and" | "or" | "xor" | "nor" | "slt" | "sltu" | "sllv" | "srlv"
        | "srav" | "mul" | "div" | "divu" | "rem" | "remu" => {
            let (d, s, t) = want_regs3(ops, line)?;
            let i = match m {
                "add" => Instr::Add(d, s, t),
                "sub" => Instr::Sub(d, s, t),
                "and" => Instr::And(d, s, t),
                "or" => Instr::Or(d, s, t),
                "xor" => Instr::Xor(d, s, t),
                "nor" => Instr::Nor(d, s, t),
                "slt" => Instr::Slt(d, s, t),
                "sltu" => Instr::Sltu(d, s, t),
                "sllv" => Instr::Sllv(d, s, t),
                "srlv" => Instr::Srlv(d, s, t),
                "srav" => Instr::Srav(d, s, t),
                "mul" => Instr::Mul(d, s, t),
                "div" => Instr::Div(d, s, t),
                "divu" => Instr::Divu(d, s, t),
                "rem" => Instr::Rem(d, s, t),
                _ => Instr::Remu(d, s, t),
            };
            one(Ready(i))
        }
        // ---- shift immediates ----
        "sll" | "srl" | "sra" => {
            let (d, s, e) = want_rr_expr(ops, line)?;
            let sh = match e {
                Expr::Const(v) if (0..32).contains(&v) => v as u8,
                _ => return Err(err(line, "shift amount must be 0..32")),
            };
            let i = match m {
                "sll" => Instr::Sll(d, s, sh),
                "srl" => Instr::Srl(d, s, sh),
                _ => Instr::Sra(d, s, sh),
            };
            one(Ready(i))
        }
        // ---- immediate ALU ----
        "addi" | "andi" | "ori" | "xori" | "slti" | "sltiu" => {
            let (d, s, e) = want_rr_expr(ops, line)?;
            let op = match m {
                "addi" => ImmOp::Addi,
                "andi" => ImmOp::Andi,
                "ori" => ImmOp::Ori,
                "xori" => ImmOp::Xori,
                "slti" => ImmOp::Slti,
                _ => ImmOp::Sltiu,
            };
            one(WithImm(op, d, s, e))
        }
        "subi" => {
            let (d, s, e) = want_rr_expr(ops, line)?;
            let e = match e {
                Expr::Const(v) => Expr::Const(-v),
                _ => return Err(err(line, "subi needs a constant")),
            };
            one(WithImm(ImmOp::Addi, d, s, e))
        }
        "lui" => {
            let (d, e) = want_r_expr(ops, line)?;
            one(Lui(d, e))
        }
        // ---- memory ----
        "lw" | "lh" | "lhu" | "lb" | "lbu" | "sw" | "sh" | "sb" => {
            let (r, b, e) = want_mem(ops, line)?;
            let op = match m {
                "lw" => ImmOp::Lw,
                "lh" => ImmOp::Lh,
                "lhu" => ImmOp::Lhu,
                "lb" => ImmOp::Lb,
                "lbu" => ImmOp::Lbu,
                "sw" => ImmOp::Sw,
                "sh" => ImmOp::Sh,
                _ => ImmOp::Sb,
            };
            one(WithImm(op, r, b, e))
        }
        // ---- branches ----
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            let (s, t, e) = want_rr_expr(ops, line)?;
            let op = match m {
                "beq" => BrOp::Beq,
                "bne" => BrOp::Bne,
                "blt" => BrOp::Blt,
                "bge" => BrOp::Bge,
                "bltu" => BrOp::Bltu,
                _ => BrOp::Bgeu,
            };
            one(Br(op, s, t, e))
        }
        "bgt" | "ble" | "bgtu" | "bleu" => {
            let (s, t, e) = want_rr_expr(ops, line)?;
            let op = match m {
                "bgt" => BrOp::Blt,
                "ble" => BrOp::Bge,
                "bgtu" => BrOp::Bltu,
                _ => BrOp::Bgeu,
            };
            one(Br(op, t, s, e))
        }
        "beqz" | "bnez" | "bltz" | "bgez" | "blez" | "bgtz" => {
            let (s, e) = want_r_expr(ops, line)?;
            let pi = match m {
                "beqz" => Br(BrOp::Beq, s, Reg::ZERO, e),
                "bnez" => Br(BrOp::Bne, s, Reg::ZERO, e),
                "bltz" => Br(BrOp::Blt, s, Reg::ZERO, e),
                "bgez" => Br(BrOp::Bge, s, Reg::ZERO, e),
                "blez" => Br(BrOp::Bge, Reg::ZERO, s, e),
                _ => Br(BrOp::Blt, Reg::ZERO, s, e),
            };
            one(pi)
        }
        // ---- jumps ----
        "j" | "b" => match ops {
            [Operand::Expr(e)] => one(Jmp {
                link: false,
                target: e.clone(),
            }),
            _ => Err(err(line, "expected a target")),
        },
        "jal" | "call" => match ops {
            [Operand::Expr(e)] => one(Jmp {
                link: true,
                target: e.clone(),
            }),
            _ => Err(err(line, "expected a target")),
        },
        "jr" => match ops {
            [Operand::Reg(s)] => one(Ready(Instr::Jr(*s))),
            _ => Err(err(line, "expected a register")),
        },
        "jalr" => match ops {
            [Operand::Reg(s)] => one(Ready(Instr::Jalr(Reg::RA, *s))),
            [Operand::Reg(d), Operand::Reg(s)] => one(Ready(Instr::Jalr(*d, *s))),
            _ => Err(err(line, "expected jalr [rd,] rs")),
        },
        "ret" => {
            if !ops.is_empty() {
                return Err(err(line, "ret takes no operands"));
            }
            one(Ready(Instr::Jr(Reg::RA)))
        }
        // ---- system ----
        "halt" => {
            if !ops.is_empty() {
                return Err(err(line, "halt takes no operands"));
            }
            one(Ready(Instr::Halt))
        }
        "out" => match ops {
            [Operand::Reg(s)] => one(Ready(Instr::Out(*s))),
            _ => Err(err(line, "expected a register")),
        },
        "nop" => {
            if !ops.is_empty() {
                return Err(err(line, "nop takes no operands"));
            }
            one(Ready(Instr::Sll(Reg::ZERO, Reg::ZERO, 0)))
        }
        // ---- pseudo data movement ----
        "move" | "mov" => {
            let (d, s) = want_regs2(ops, line)?;
            one(Ready(Instr::Add(d, s, Reg::ZERO)))
        }
        "not" => {
            let (d, s) = want_regs2(ops, line)?;
            one(Ready(Instr::Nor(d, s, Reg::ZERO)))
        }
        "neg" => {
            let (d, s) = want_regs2(ops, line)?;
            one(Ready(Instr::Sub(d, Reg::ZERO, s)))
        }
        "li" => {
            let (d, e) = want_r_expr(ops, line)?;
            let v = match e {
                Expr::Const(v) => v,
                _ => return Err(err(line, "li needs a constant; use la for labels")),
            };
            if !(-(1i64 << 31)..=(u32::MAX as i64)).contains(&v) {
                return Err(err(line, "li constant out of 32-bit range"));
            }
            let v32 = v as u32;
            if (-32768..=32767).contains(&(v32 as i32 as i64)) || (-32768..=32767).contains(&v) {
                Ok(vec![Ready(Instr::Addi(d, Reg::ZERO, v as i16))])
            } else if v32 & 0xFFFF == 0 {
                Ok(vec![Ready(Instr::Lui(d, (v32 >> 16) as u16))])
            } else {
                Ok(vec![
                    Ready(Instr::Lui(d, (v32 >> 16) as u16)),
                    Ready(Instr::Ori(d, d, (v32 & 0xFFFF) as u16)),
                ])
            }
        }
        "la" => {
            let (d, e) = want_r_expr(ops, line)?;
            Ok(vec![
                Lui(d, Expr::Hi(Box::new(e.clone()))),
                WithImm(ImmOp::Ori, d, d, Expr::Lo(Box::new(e))),
            ])
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

// ---------------------------------------------------------------------------
// pass-2 emission
// ---------------------------------------------------------------------------

fn emit(
    pi: &PInstr,
    pc: u32,
    symbols: &HashMap<String, u32>,
    line: usize,
) -> Result<Instr, AsmError> {
    match pi {
        PInstr::Ready(i) => Ok(*i),
        PInstr::Br(op, s, t, e) => {
            let target = e.eval(symbols).map_err(|m| err(line, m))? as u32;
            if target & 3 != 0 {
                return Err(err(line, "branch target not word-aligned"));
            }
            let delta = (target as i64) - (pc as i64 + 4);
            let words = delta / 4;
            if delta % 4 != 0 || !(-32768..=32767).contains(&words) {
                return Err(err(line, "branch target out of range"));
            }
            let off = words as i16;
            let i = match op {
                BrOp::Beq => Instr::Beq(*s, *t, off),
                BrOp::Bne => Instr::Bne(*s, *t, off),
                BrOp::Blt => Instr::Blt(*s, *t, off),
                BrOp::Bge => Instr::Bge(*s, *t, off),
                BrOp::Bltu => Instr::Bltu(*s, *t, off),
                BrOp::Bgeu => Instr::Bgeu(*s, *t, off),
            };
            Ok(i)
        }
        PInstr::Jmp { link, target } => {
            let t = target.eval(symbols).map_err(|m| err(line, m))? as u32;
            if t & 3 != 0 {
                return Err(err(line, "jump target not word-aligned"));
            }
            if (t & 0xF000_0000) != ((pc + 4) & 0xF000_0000) {
                return Err(err(line, "jump target outside the 256MB region"));
            }
            let field = (t >> 2) & 0x03FF_FFFF;
            Ok(if *link {
                Instr::Jal(field)
            } else {
                Instr::J(field)
            })
        }
        PInstr::WithImm(op, a, b, e) => {
            let v = e.eval(symbols).map_err(|m| err(line, m))?;
            if op.signed() {
                if !(-32768..=32767).contains(&v) {
                    return Err(err(
                        line,
                        format!("immediate {v} out of signed 16-bit range"),
                    ));
                }
            } else if !(0..=65535).contains(&v) {
                return Err(err(
                    line,
                    format!("immediate {v} out of unsigned 16-bit range"),
                ));
            }
            Ok(op.build(*a, *b, v))
        }
        PInstr::Lui(d, e) => {
            let v = e.eval(symbols).map_err(|m| err(line, m))?;
            if !(0..=65535).contains(&v) {
                return Err(err(line, format!("lui immediate {v} out of range")));
            }
            Ok(Instr::Lui(*d, v as u16))
        }
    }
}

fn emit_data(
    item: &DataItem,
    out: &mut Vec<u8>,
    symbols: &HashMap<String, u32>,
    line: usize,
) -> Result<(), AsmError> {
    match item {
        DataItem::Word(e) => {
            let v = e.eval(symbols).map_err(|m| err(line, m))?;
            if !((i32::MIN as i64)..=(u32::MAX as i64)).contains(&v) {
                return Err(err(line, ".word value out of 32-bit range"));
            }
            out.extend_from_slice(&(v as u32).to_le_bytes());
        }
        DataItem::Half(e) => {
            let v = e.eval(symbols).map_err(|m| err(line, m))?;
            if !((i16::MIN as i64)..=(u16::MAX as i64)).contains(&v) {
                return Err(err(line, ".half value out of 16-bit range"));
            }
            out.extend_from_slice(&(v as u16).to_le_bytes());
        }
        DataItem::Byte(e) => {
            let v = e.eval(symbols).map_err(|m| err(line, m))?;
            if !(-128..=255).contains(&v) {
                return Err(err(line, ".byte value out of 8-bit range"));
            }
            out.push(v as u8);
        }
        DataItem::Space(n) => out.resize(out.len() + *n as usize, 0),
        DataItem::Align(pad) => out.resize(out.len() + *pad as usize, 0),
        DataItem::Bytes(b) => out.extend_from_slice(b),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ControlKind;

    #[test]
    fn minimal_program() {
        let p = assemble("main: addi v0, zero, 1\n halt\n").unwrap();
        assert_eq!(p.instrs[0], Instr::Addi(Reg::V0, Reg::ZERO, 1));
        assert_eq!(p.instrs[1], Instr::Halt);
        assert_eq!(p.entry, p.text_base);
    }

    #[test]
    fn labels_and_branches() {
        let src = "
main:   addi t0, zero, 3
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let p = assemble(src).unwrap();
        // bnez expands to bne t0, zero, loop ; offset = loop - (pc+4) = -2 words.
        assert_eq!(
            p.instrs[2],
            Instr::Bne(Reg::from_name("t0").unwrap(), Reg::ZERO, -2)
        );
    }

    #[test]
    fn la_li_expansion() {
        let src = "
main:   la   t0, buf
        li   t1, 7
        li   t2, 0x12345678
        li   t3, 0x10000
        halt
        .data
buf:    .space 4
";
        let p = assemble(src).unwrap();
        let t0 = Reg::from_name("t0").unwrap();
        assert_eq!(p.instrs[0], Instr::Lui(t0, 0x1000));
        assert_eq!(p.instrs[1], Instr::Ori(t0, t0, 0x0000));
        assert_eq!(
            p.instrs[2],
            Instr::Addi(Reg::from_name("t1").unwrap(), Reg::ZERO, 7)
        );
        assert_eq!(
            p.instrs[3],
            Instr::Lui(Reg::from_name("t2").unwrap(), 0x1234)
        );
        assert_eq!(
            p.instrs[4],
            Instr::Ori(
                Reg::from_name("t2").unwrap(),
                Reg::from_name("t2").unwrap(),
                0x5678
            )
        );
        assert_eq!(p.instrs[5], Instr::Lui(Reg::from_name("t3").unwrap(), 1));
    }

    #[test]
    fn data_directives() {
        let src = "
main:   halt
        .data
a:      .word 1, -1, b
        .half 258
        .byte 'x', 10
        .align 2
b:      .asciiz \"hi\\n\"
";
        let p = assemble(src).unwrap();
        let b = p.symbol("b").unwrap();
        assert_eq!(b % 4, 0);
        let a = p.symbol("a").unwrap();
        assert_eq!(a, p.data_base);
        assert_eq!(&p.data[0..4], &1u32.to_le_bytes());
        assert_eq!(&p.data[4..8], &(-1i32 as u32).to_le_bytes());
        assert_eq!(&p.data[8..12], &b.to_le_bytes());
        assert_eq!(&p.data[12..14], &258u16.to_le_bytes());
        assert_eq!(p.data[14], b'x');
        assert_eq!(p.data[15], 10);
        let off = (b - p.data_base) as usize;
        assert_eq!(&p.data[off..off + 4], b"hi\n\0");
    }

    #[test]
    fn control_pseudos() {
        let src = "
main:   call f
        b end
f:      ret
end:    halt
";
        let p = assemble(src).unwrap();
        assert_eq!(p.instrs[0].control_kind(), ControlKind::Call);
        assert_eq!(p.instrs[1].control_kind(), ControlKind::Jump);
        assert_eq!(p.instrs[2].control_kind(), ControlKind::Return);
        assert_eq!(p.instrs[0].direct_target(p.text_base), p.symbol("f"));
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = assemble("main: frobnicate t0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("frobnicate"));

        let e = assemble("x: addi t0, t0, 99999\n").unwrap_err();
        assert!(e.msg.contains("out of"), "{}", e.msg);

        let e = assemble("a: halt\na: halt\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));

        let e = assemble("main: j nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined"));
    }

    #[test]
    fn register_named_label_rejected() {
        let e = assemble("sp: halt\n").unwrap_err();
        assert!(e.msg.contains("shadows"));
    }

    #[test]
    fn mem_operands() {
        let src = "main: lw t0, 8(sp)\n sw t0, -4(fp)\n lb t1, (t0)\n halt\n";
        let p = assemble(src).unwrap();
        let t0 = Reg::from_name("t0").unwrap();
        assert_eq!(p.instrs[0], Instr::Lw(t0, Reg::SP, 8));
        assert_eq!(p.instrs[1], Instr::Sw(t0, Reg::FP, -4));
        assert_eq!(p.instrs[2], Instr::Lb(Reg::from_name("t1").unwrap(), t0, 0));
    }

    #[test]
    fn hi_lo_relocations() {
        let src = "
main:   lui  t0, %hi(buf)
        ori  t0, t0, %lo(buf)
        lw   t1, %lo(buf)(t0)
        halt
        .data
        .space 8
buf:    .word 42
";
        let p = assemble(src).unwrap();
        let buf = p.symbol("buf").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Lui(Reg::from_name("t0").unwrap(), (buf >> 16) as u16)
        );
    }

    #[test]
    fn comments_stripped() {
        let p = assemble("main: halt ; c1\n# full line\n// also\n").unwrap();
        assert_eq!(p.instrs.len(), 1);
    }
}
