//! The TRISC instruction set.
//!
//! TRISC is a 32-bit, fixed-width, byte-addressed RISC instruction set in the
//! spirit of the MIPS-derived ISA SimpleScalar used in the original paper.
//! Field order in every variant is destination-first.

use crate::Reg;
use std::fmt;

/// A decoded TRISC instruction.
///
/// Branch offsets are in *instructions* (words) relative to the address of the
/// following instruction (`pc + 4`), as in MIPS. `J`/`Jal` carry a 26-bit
/// word-address that replaces bits `[27:2]` of `pc + 4`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    // ---- three-register ALU ----
    /// `rd = rs + rt` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = rs - rt` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = rs & rt`.
    And(Reg, Reg, Reg),
    /// `rd = rs | rt`.
    Or(Reg, Reg, Reg),
    /// `rd = rs ^ rt`.
    Xor(Reg, Reg, Reg),
    /// `rd = !(rs | rt)`.
    Nor(Reg, Reg, Reg),
    /// `rd = (rs as i32) < (rt as i32)`.
    Slt(Reg, Reg, Reg),
    /// `rd = rs < rt` (unsigned).
    Sltu(Reg, Reg, Reg),
    /// `rd = rs << (rt & 31)`.
    Sllv(Reg, Reg, Reg),
    /// `rd = rs >> (rt & 31)` (logical).
    Srlv(Reg, Reg, Reg),
    /// `rd = (rs as i32) >> (rt & 31)` (arithmetic).
    Srav(Reg, Reg, Reg),
    /// `rd = rs * rt` (low 32 bits, wrapping).
    Mul(Reg, Reg, Reg),
    /// `rd = (rs as i32) / (rt as i32)`; division by zero yields `-1`.
    Div(Reg, Reg, Reg),
    /// `rd = rs / rt` (unsigned); division by zero yields `u32::MAX`.
    Divu(Reg, Reg, Reg),
    /// `rd = (rs as i32) % (rt as i32)`; modulo by zero yields `rs`.
    Rem(Reg, Reg, Reg),
    /// `rd = rs % rt` (unsigned); modulo by zero yields `rs`.
    Remu(Reg, Reg, Reg),

    // ---- shift-immediate ----
    /// `rd = rs << shamt`.
    Sll(Reg, Reg, u8),
    /// `rd = rs >> shamt` (logical).
    Srl(Reg, Reg, u8),
    /// `rd = (rs as i32) >> shamt` (arithmetic).
    Sra(Reg, Reg, u8),

    // ---- immediate ALU ----
    /// `rd = rs + sign_extend(imm)`.
    Addi(Reg, Reg, i16),
    /// `rd = rs & zero_extend(imm)`.
    Andi(Reg, Reg, u16),
    /// `rd = rs | zero_extend(imm)`.
    Ori(Reg, Reg, u16),
    /// `rd = rs ^ zero_extend(imm)`.
    Xori(Reg, Reg, u16),
    /// `rd = (rs as i32) < sign_extend(imm)`.
    Slti(Reg, Reg, i16),
    /// `rd = rs < sign_extend(imm) as u32` (unsigned compare).
    Sltiu(Reg, Reg, i16),
    /// `rd = imm << 16`.
    Lui(Reg, u16),

    // ---- loads (rd, base, offset) ----
    /// Load word: `rd = mem32[rs + offset]`.
    Lw(Reg, Reg, i16),
    /// Load halfword, sign-extended.
    Lh(Reg, Reg, i16),
    /// Load halfword, zero-extended.
    Lhu(Reg, Reg, i16),
    /// Load byte, sign-extended.
    Lb(Reg, Reg, i16),
    /// Load byte, zero-extended.
    Lbu(Reg, Reg, i16),

    // ---- stores (src, base, offset) ----
    /// Store word: `mem32[rs + offset] = rt`.
    Sw(Reg, Reg, i16),
    /// Store low halfword.
    Sh(Reg, Reg, i16),
    /// Store low byte.
    Sb(Reg, Reg, i16),

    // ---- conditional branches (rs, rt, offset-in-words) ----
    /// Branch if `rs == rt`.
    Beq(Reg, Reg, i16),
    /// Branch if `rs != rt`.
    Bne(Reg, Reg, i16),
    /// Branch if `(rs as i32) < (rt as i32)`.
    Blt(Reg, Reg, i16),
    /// Branch if `(rs as i32) >= (rt as i32)`.
    Bge(Reg, Reg, i16),
    /// Branch if `rs < rt` (unsigned).
    Bltu(Reg, Reg, i16),
    /// Branch if `rs >= rt` (unsigned).
    Bgeu(Reg, Reg, i16),

    // ---- jumps ----
    /// Unconditional direct jump to a 26-bit word address.
    J(u32),
    /// Direct call: `ra = pc + 4`, jump to a 26-bit word address.
    Jal(u32),
    /// Indirect jump to the address in `rs`; `jr ra` is the return idiom.
    Jr(Reg),
    /// Indirect call: `rd = pc + 4`, jump to the address in `rs`.
    Jalr(Reg, Reg),

    // ---- system ----
    /// Stop the machine.
    Halt,
    /// Append the value of `rs` to the machine's output buffer.
    Out(Reg),
}

/// Control-flow classification of an instruction, as seen by front-end
/// predictors.
///
/// The trace selector cares about three properties that this enum encodes:
/// whether an instruction is a conditional branch (it consumes one of the six
/// outcome bits in a trace ID), whether its target is indirect (it must end a
/// trace, §3.1 of the paper), and whether it is a call or return (the return
/// history stack counts calls per trace and reacts to returns).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ControlKind {
    /// Not a control-transfer instruction.
    None,
    /// Conditional direct branch (`beq` … `bgeu`).
    CondBranch,
    /// Unconditional direct jump (`j`).
    Jump,
    /// Direct call (`jal`).
    Call,
    /// Indirect jump (`jr rs` with `rs != ra`).
    IndirectJump,
    /// Indirect call (`jalr`).
    IndirectCall,
    /// Subroutine return (`jr ra`).
    Return,
}

impl ControlKind {
    /// True for every kind except [`ControlKind::None`].
    pub fn is_control(self) -> bool {
        self != ControlKind::None
    }

    /// True if the target cannot be derived from the instruction encoding
    /// (indirect jumps/calls and returns). Such instructions terminate a
    /// trace because trace IDs only encode conditional-branch outcomes.
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            ControlKind::IndirectJump | ControlKind::IndirectCall | ControlKind::Return
        )
    }

    /// True for `jal` and `jalr` — instructions that push a return address.
    pub fn is_call(self) -> bool {
        matches!(self, ControlKind::Call | ControlKind::IndirectCall)
    }
}

impl Instr {
    /// Classifies this instruction's control-flow behaviour.
    ///
    /// ```
    /// use ntp_isa::{ControlKind, Instr, Reg};
    /// assert_eq!(Instr::Jr(Reg::RA).control_kind(), ControlKind::Return);
    /// let t0 = Reg::from_name("t0").unwrap();
    /// assert_eq!(Instr::Jr(t0).control_kind(), ControlKind::IndirectJump);
    /// ```
    pub fn control_kind(&self) -> ControlKind {
        match self {
            Instr::Beq(..)
            | Instr::Bne(..)
            | Instr::Blt(..)
            | Instr::Bge(..)
            | Instr::Bltu(..)
            | Instr::Bgeu(..) => ControlKind::CondBranch,
            Instr::J(_) => ControlKind::Jump,
            Instr::Jal(_) => ControlKind::Call,
            Instr::Jr(rs) => {
                if *rs == Reg::RA {
                    ControlKind::Return
                } else {
                    ControlKind::IndirectJump
                }
            }
            Instr::Jalr(..) => ControlKind::IndirectCall,
            _ => ControlKind::None,
        }
    }

    /// True if this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        self.control_kind() == ControlKind::CondBranch
    }

    /// The statically-known target of a direct control transfer located at
    /// `pc`, or `None` for non-control and indirect instructions.
    ///
    /// Branch targets are `pc + 4 + offset * 4`; jump targets splice the
    /// 26-bit word address into bits `[27:2]` of `pc + 4`.
    pub fn direct_target(&self, pc: u32) -> Option<u32> {
        match self {
            Instr::Beq(_, _, off)
            | Instr::Bne(_, _, off)
            | Instr::Blt(_, _, off)
            | Instr::Bge(_, _, off)
            | Instr::Bltu(_, _, off)
            | Instr::Bgeu(_, _, off) => {
                Some(pc.wrapping_add(4).wrapping_add((*off as i32 as u32) << 2))
            }
            Instr::J(t) | Instr::Jal(t) => {
                Some((pc.wrapping_add(4) & 0xF000_0000) | ((t & 0x03FF_FFFF) << 2))
            }
            _ => None,
        }
    }

    /// The mnemonic of this instruction, as accepted by the assembler.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Add(..) => "add",
            Instr::Sub(..) => "sub",
            Instr::And(..) => "and",
            Instr::Or(..) => "or",
            Instr::Xor(..) => "xor",
            Instr::Nor(..) => "nor",
            Instr::Slt(..) => "slt",
            Instr::Sltu(..) => "sltu",
            Instr::Sllv(..) => "sllv",
            Instr::Srlv(..) => "srlv",
            Instr::Srav(..) => "srav",
            Instr::Mul(..) => "mul",
            Instr::Div(..) => "div",
            Instr::Divu(..) => "divu",
            Instr::Rem(..) => "rem",
            Instr::Remu(..) => "remu",
            Instr::Sll(..) => "sll",
            Instr::Srl(..) => "srl",
            Instr::Sra(..) => "sra",
            Instr::Addi(..) => "addi",
            Instr::Andi(..) => "andi",
            Instr::Ori(..) => "ori",
            Instr::Xori(..) => "xori",
            Instr::Slti(..) => "slti",
            Instr::Sltiu(..) => "sltiu",
            Instr::Lui(..) => "lui",
            Instr::Lw(..) => "lw",
            Instr::Lh(..) => "lh",
            Instr::Lhu(..) => "lhu",
            Instr::Lb(..) => "lb",
            Instr::Lbu(..) => "lbu",
            Instr::Sw(..) => "sw",
            Instr::Sh(..) => "sh",
            Instr::Sb(..) => "sb",
            Instr::Beq(..) => "beq",
            Instr::Bne(..) => "bne",
            Instr::Blt(..) => "blt",
            Instr::Bge(..) => "bge",
            Instr::Bltu(..) => "bltu",
            Instr::Bgeu(..) => "bgeu",
            Instr::J(_) => "j",
            Instr::Jal(_) => "jal",
            Instr::Jr(_) => "jr",
            Instr::Jalr(..) => "jalr",
            Instr::Halt => "halt",
            Instr::Out(_) => "out",
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mnemonic();
        match *self {
            Instr::Add(d, s, t)
            | Instr::Sub(d, s, t)
            | Instr::And(d, s, t)
            | Instr::Or(d, s, t)
            | Instr::Xor(d, s, t)
            | Instr::Nor(d, s, t)
            | Instr::Slt(d, s, t)
            | Instr::Sltu(d, s, t)
            | Instr::Sllv(d, s, t)
            | Instr::Srlv(d, s, t)
            | Instr::Srav(d, s, t)
            | Instr::Mul(d, s, t)
            | Instr::Div(d, s, t)
            | Instr::Divu(d, s, t)
            | Instr::Rem(d, s, t)
            | Instr::Remu(d, s, t) => write!(f, "{m} {d}, {s}, {t}"),
            Instr::Sll(d, s, sh) | Instr::Srl(d, s, sh) | Instr::Sra(d, s, sh) => {
                write!(f, "{m} {d}, {s}, {sh}")
            }
            Instr::Addi(d, s, i) | Instr::Slti(d, s, i) | Instr::Sltiu(d, s, i) => {
                write!(f, "{m} {d}, {s}, {i}")
            }
            Instr::Andi(d, s, i) | Instr::Ori(d, s, i) | Instr::Xori(d, s, i) => {
                write!(f, "{m} {d}, {s}, 0x{i:x}")
            }
            Instr::Lui(d, i) => write!(f, "{m} {d}, 0x{i:x}"),
            Instr::Lw(d, b, o)
            | Instr::Lh(d, b, o)
            | Instr::Lhu(d, b, o)
            | Instr::Lb(d, b, o)
            | Instr::Lbu(d, b, o)
            | Instr::Sw(d, b, o)
            | Instr::Sh(d, b, o)
            | Instr::Sb(d, b, o) => write!(f, "{m} {d}, {o}({b})"),
            Instr::Beq(s, t, o)
            | Instr::Bne(s, t, o)
            | Instr::Blt(s, t, o)
            | Instr::Bge(s, t, o)
            | Instr::Bltu(s, t, o)
            | Instr::Bgeu(s, t, o) => write!(f, "{m} {s}, {t}, {o}"),
            Instr::J(t) | Instr::Jal(t) => write!(f, "{m} 0x{:x}", t << 2),
            Instr::Jr(s) => write!(f, "{m} {s}"),
            Instr::Jalr(d, s) => write!(f, "{m} {d}, {s}"),
            Instr::Halt => f.write_str(m),
            Instr::Out(s) => write!(f, "{m} {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_kind_classification() {
        assert_eq!(
            Instr::Beq(Reg::ZERO, Reg::ZERO, 1).control_kind(),
            ControlKind::CondBranch
        );
        assert_eq!(Instr::J(0).control_kind(), ControlKind::Jump);
        assert_eq!(Instr::Jal(0).control_kind(), ControlKind::Call);
        assert_eq!(Instr::Jr(Reg::RA).control_kind(), ControlKind::Return);
        assert_eq!(
            Instr::Jr(Reg::new(8).unwrap()).control_kind(),
            ControlKind::IndirectJump
        );
        assert_eq!(
            Instr::Jalr(Reg::RA, Reg::new(8).unwrap()).control_kind(),
            ControlKind::IndirectCall
        );
        assert_eq!(
            Instr::Add(Reg::ZERO, Reg::ZERO, Reg::ZERO).control_kind(),
            ControlKind::None
        );
    }

    #[test]
    fn indirect_and_call_flags() {
        assert!(ControlKind::Return.is_indirect());
        assert!(ControlKind::IndirectCall.is_indirect());
        assert!(ControlKind::IndirectCall.is_call());
        assert!(ControlKind::Call.is_call());
        assert!(!ControlKind::CondBranch.is_indirect());
        assert!(!ControlKind::None.is_control());
    }

    #[test]
    fn branch_target_arithmetic() {
        let b = Instr::Beq(Reg::ZERO, Reg::ZERO, -2);
        assert_eq!(b.direct_target(0x100), Some(0x100 + 4 - 8));
        let b = Instr::Bne(Reg::ZERO, Reg::ZERO, 3);
        assert_eq!(b.direct_target(0x100), Some(0x100 + 4 + 12));
    }

    #[test]
    fn jump_target_splices_region() {
        let j = Instr::J(0x40);
        assert_eq!(
            j.direct_target(0x1000_0000),
            Some(0x1000_0000 & 0xF000_0000 | 0x100)
        );
        assert_eq!(Instr::Jr(Reg::RA).direct_target(0), None);
        assert_eq!(Instr::Halt.direct_target(0), None);
    }
}
