//! Assembled program images and the default memory layout.

use crate::{encode, Instr};
use std::collections::HashMap;

/// Default base address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Default base address of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;
/// Default initial stack pointer (stack grows down from here).
pub const STACK_TOP: u32 = 0x7FFF_FF00;

/// An assembled program: code, initialized data, entry point and symbols.
///
/// Produced by [`crate::asm::assemble`]; consumed by the `ntp-sim` machine.
///
/// # Examples
///
/// ```
/// use ntp_isa::asm::assemble;
/// let p = assemble("main: addi v0, zero, 42\n out v0\n halt\n").unwrap();
/// assert_eq!(p.entry, p.text_base);
/// assert_eq!(p.instrs.len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Address of the first instruction.
    pub text_base: u32,
    /// Decoded instructions, contiguous from `text_base`.
    pub instrs: Vec<Instr>,
    /// Address of the first byte of initialized data.
    pub data_base: u32,
    /// Initialized data image, contiguous from `data_base`.
    pub data: Vec<u8>,
    /// Address execution starts at (the `main` label if present).
    pub entry: u32,
    /// Label name → address, for poking inputs and reading results.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Creates an empty program using the default layout.
    pub fn new() -> Program {
        Program {
            text_base: TEXT_BASE,
            instrs: Vec::new(),
            data_base: DATA_BASE,
            data: Vec::new(),
            entry: TEXT_BASE,
            symbols: HashMap::new(),
        }
    }

    /// The instruction at `pc`, or `None` if `pc` is outside the text segment
    /// or not word-aligned.
    pub fn instr_at(&self, pc: u32) -> Option<&Instr> {
        if pc < self.text_base || pc & 3 != 0 {
            return None;
        }
        self.instrs.get(((pc - self.text_base) >> 2) as usize)
    }

    /// One past the last text address.
    pub fn end_of_text(&self) -> u32 {
        self.text_base + (self.instrs.len() as u32) * 4
    }

    /// Looks up a label's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Encodes the text segment to raw instruction words.
    pub fn encode_text(&self) -> Vec<u32> {
        self.instrs.iter().map(encode).collect()
    }

    /// Total static instruction count.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl Default for Program {
    fn default() -> Program {
        Program::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn instr_at_bounds() {
        let mut p = Program::new();
        p.instrs.push(Instr::Halt);
        assert_eq!(p.instr_at(p.text_base), Some(&Instr::Halt));
        assert_eq!(p.instr_at(p.text_base + 4), None);
        assert_eq!(p.instr_at(p.text_base + 1), None);
        assert_eq!(p.instr_at(0), None);
        assert_eq!(p.end_of_text(), p.text_base + 4);
    }

    #[test]
    fn encode_text_matches_len() {
        let mut p = Program::new();
        p.instrs.push(Instr::Addi(Reg::V0, Reg::ZERO, 5));
        p.instrs.push(Instr::Halt);
        assert_eq!(p.encode_text().len(), 2);
    }
}
