//! # ntp-isa — the TRISC instruction set
//!
//! TRISC is a small 32-bit RISC instruction set (MIPS-flavoured, like the
//! SimpleScalar ISA used by the paper this repository reproduces) with:
//!
//! * 32 general-purpose registers ([`Reg`]), `r0` hardwired to zero;
//! * fixed-width 32-bit instructions ([`Instr`]) with full binary
//!   [`encode`]/[`decode`] support and a [`disasm`] module;
//! * a two-pass assembler ([`asm::assemble`]) with labels, data directives
//!   and the usual pseudo-instructions;
//! * explicit control-flow classification ([`ControlKind`]) distinguishing
//!   conditional branches, direct jumps/calls, indirect jumps/calls and
//!   returns — the properties trace selection and next-trace prediction
//!   care about.
//!
//! # Example
//!
//! ```
//! use ntp_isa::asm::assemble;
//!
//! let program = assemble(
//!     "
//! main:   addi a0, zero, 5
//!         jal  double
//!         out  v0
//!         halt
//! double: add  v0, a0, a0
//!         ret
//! ",
//! )?;
//! assert_eq!(program.instrs.len(), 6);
//! assert!(program.symbol("double").is_some());
//! # Ok::<(), ntp_isa::asm::AsmError>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
mod encode;
mod image;
mod instr;
mod program;
mod reg;

pub use encode::{decode, encode, DecodeError};
pub use image::{ImageError, IMAGE_MAGIC, IMAGE_VERSION};
pub use instr::{ControlKind, Instr};
pub use program::{Program, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::Reg;
