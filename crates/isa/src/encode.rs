//! Binary encoding and decoding of TRISC instructions.
//!
//! The layout is MIPS-like: a 6-bit opcode in bits `[31:26]`, with R-type
//! instructions using `opcode = 0` and a 6-bit function code in bits `[5:0]`.
//!
//! ```text
//! R-type:  op[31:26] rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]
//! I-type:  op[31:26] rs[25:21] rt[20:16] imm[15:0]
//! J-type:  op[31:26] target[25:0]
//! ```

use crate::{Instr, Reg};
use std::fmt;

/// Error returned by [`decode`] when a word is not a valid instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word 0x{:08x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Primary opcodes.
const OP_RTYPE: u32 = 0x00;
const OP_J: u32 = 0x02;
const OP_JAL: u32 = 0x03;
const OP_BEQ: u32 = 0x04;
const OP_BNE: u32 = 0x05;
const OP_BLT: u32 = 0x06;
const OP_BGE: u32 = 0x07;
const OP_ADDI: u32 = 0x08;
const OP_SLTI: u32 = 0x0a;
const OP_SLTIU: u32 = 0x0b;
const OP_ANDI: u32 = 0x0c;
const OP_ORI: u32 = 0x0d;
const OP_XORI: u32 = 0x0e;
const OP_LUI: u32 = 0x0f;
const OP_BLTU: u32 = 0x16;
const OP_BGEU: u32 = 0x17;
const OP_LB: u32 = 0x20;
const OP_LH: u32 = 0x21;
const OP_LW: u32 = 0x23;
const OP_LBU: u32 = 0x24;
const OP_LHU: u32 = 0x25;
const OP_SB: u32 = 0x28;
const OP_SH: u32 = 0x29;
const OP_SW: u32 = 0x2b;

// R-type function codes.
const F_SLL: u32 = 0x00;
const F_SRL: u32 = 0x02;
const F_SRA: u32 = 0x03;
const F_SLLV: u32 = 0x04;
const F_SRLV: u32 = 0x06;
const F_SRAV: u32 = 0x07;
const F_JR: u32 = 0x08;
const F_JALR: u32 = 0x09;
const F_MUL: u32 = 0x18;
const F_DIV: u32 = 0x1a;
const F_DIVU: u32 = 0x1b;
const F_REM: u32 = 0x1c;
const F_REMU: u32 = 0x1d;
const F_ADD: u32 = 0x20;
const F_SUB: u32 = 0x22;
const F_AND: u32 = 0x24;
const F_OR: u32 = 0x25;
const F_XOR: u32 = 0x26;
const F_NOR: u32 = 0x27;
const F_SLT: u32 = 0x2a;
const F_SLTU: u32 = 0x2b;
const F_OUT: u32 = 0x3e;
const F_HALT: u32 = 0x3f;

fn r(rs: Reg, rt: Reg, rd: Reg, shamt: u8, funct: u32) -> u32 {
    (OP_RTYPE << 26)
        | ((rs.number() as u32) << 21)
        | ((rt.number() as u32) << 16)
        | ((rd.number() as u32) << 11)
        | (((shamt & 31) as u32) << 6)
        | funct
}

fn i(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | ((rs.number() as u32) << 21) | ((rt.number() as u32) << 16) | imm as u32
}

/// Encodes an instruction into its 32-bit binary form.
///
/// ```
/// use ntp_isa::{encode, decode, Instr, Reg};
/// let instr = Instr::Addi(Reg::V0, Reg::ZERO, -7);
/// assert_eq!(decode(encode(&instr)).unwrap(), instr);
/// ```
pub fn encode(instr: &Instr) -> u32 {
    use Instr::*;
    match *instr {
        Add(d, s, t) => r(s, t, d, 0, F_ADD),
        Sub(d, s, t) => r(s, t, d, 0, F_SUB),
        And(d, s, t) => r(s, t, d, 0, F_AND),
        Or(d, s, t) => r(s, t, d, 0, F_OR),
        Xor(d, s, t) => r(s, t, d, 0, F_XOR),
        Nor(d, s, t) => r(s, t, d, 0, F_NOR),
        Slt(d, s, t) => r(s, t, d, 0, F_SLT),
        Sltu(d, s, t) => r(s, t, d, 0, F_SLTU),
        Sllv(d, s, t) => r(s, t, d, 0, F_SLLV),
        Srlv(d, s, t) => r(s, t, d, 0, F_SRLV),
        Srav(d, s, t) => r(s, t, d, 0, F_SRAV),
        Mul(d, s, t) => r(s, t, d, 0, F_MUL),
        Div(d, s, t) => r(s, t, d, 0, F_DIV),
        Divu(d, s, t) => r(s, t, d, 0, F_DIVU),
        Rem(d, s, t) => r(s, t, d, 0, F_REM),
        Remu(d, s, t) => r(s, t, d, 0, F_REMU),
        Sll(d, s, sh) => r(Reg::ZERO, s, d, sh, F_SLL),
        Srl(d, s, sh) => r(Reg::ZERO, s, d, sh, F_SRL),
        Sra(d, s, sh) => r(Reg::ZERO, s, d, sh, F_SRA),
        Addi(d, s, imm) => i(OP_ADDI, s, d, imm as u16),
        Slti(d, s, imm) => i(OP_SLTI, s, d, imm as u16),
        Sltiu(d, s, imm) => i(OP_SLTIU, s, d, imm as u16),
        Andi(d, s, imm) => i(OP_ANDI, s, d, imm),
        Ori(d, s, imm) => i(OP_ORI, s, d, imm),
        Xori(d, s, imm) => i(OP_XORI, s, d, imm),
        Lui(d, imm) => i(OP_LUI, Reg::ZERO, d, imm),
        Lw(d, b, off) => i(OP_LW, b, d, off as u16),
        Lh(d, b, off) => i(OP_LH, b, d, off as u16),
        Lhu(d, b, off) => i(OP_LHU, b, d, off as u16),
        Lb(d, b, off) => i(OP_LB, b, d, off as u16),
        Lbu(d, b, off) => i(OP_LBU, b, d, off as u16),
        Sw(src, b, off) => i(OP_SW, b, src, off as u16),
        Sh(src, b, off) => i(OP_SH, b, src, off as u16),
        Sb(src, b, off) => i(OP_SB, b, src, off as u16),
        Beq(s, t, off) => i(OP_BEQ, s, t, off as u16),
        Bne(s, t, off) => i(OP_BNE, s, t, off as u16),
        Blt(s, t, off) => i(OP_BLT, s, t, off as u16),
        Bge(s, t, off) => i(OP_BGE, s, t, off as u16),
        Bltu(s, t, off) => i(OP_BLTU, s, t, off as u16),
        Bgeu(s, t, off) => i(OP_BGEU, s, t, off as u16),
        J(t) => (OP_J << 26) | (t & 0x03FF_FFFF),
        Jal(t) => (OP_JAL << 26) | (t & 0x03FF_FFFF),
        Jr(s) => r(s, Reg::ZERO, Reg::ZERO, 0, F_JR),
        Jalr(d, s) => r(s, Reg::ZERO, d, 0, F_JALR),
        Halt => r(Reg::ZERO, Reg::ZERO, Reg::ZERO, 0, F_HALT),
        Out(s) => r(s, Reg::ZERO, Reg::ZERO, 0, F_OUT),
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode or function code is undefined, or if
/// fields that must be zero are not (e.g. the `rt` field of `jr`).
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    use Instr::*;
    let op = word >> 26;
    let rs = Reg::new_masked(((word >> 21) & 31) as u8);
    let rt = Reg::new_masked(((word >> 16) & 31) as u8);
    let rd = Reg::new_masked(((word >> 11) & 31) as u8);
    let shamt = ((word >> 6) & 31) as u8;
    let imm = word as u16;
    let simm = imm as i16;
    let err = Err(DecodeError { word });

    let instr = match op {
        OP_RTYPE => {
            let funct = word & 0x3f;
            match funct {
                F_ADD => Add(rd, rs, rt),
                F_SUB => Sub(rd, rs, rt),
                F_AND => And(rd, rs, rt),
                F_OR => Or(rd, rs, rt),
                F_XOR => Xor(rd, rs, rt),
                F_NOR => Nor(rd, rs, rt),
                F_SLT => Slt(rd, rs, rt),
                F_SLTU => Sltu(rd, rs, rt),
                F_SLLV => Sllv(rd, rs, rt),
                F_SRLV => Srlv(rd, rs, rt),
                F_SRAV => Srav(rd, rs, rt),
                F_MUL => Mul(rd, rs, rt),
                F_DIV => Div(rd, rs, rt),
                F_DIVU => Divu(rd, rs, rt),
                F_REM => Rem(rd, rs, rt),
                F_REMU => Remu(rd, rs, rt),
                F_SLL => Sll(rd, rt, shamt),
                F_SRL => Srl(rd, rt, shamt),
                F_SRA => Sra(rd, rt, shamt),
                F_JR => {
                    if rt != Reg::ZERO || rd != Reg::ZERO || shamt != 0 {
                        return err;
                    }
                    Jr(rs)
                }
                F_JALR => {
                    if rt != Reg::ZERO || shamt != 0 {
                        return err;
                    }
                    Jalr(rd, rs)
                }
                F_HALT => {
                    if word != (F_HALT) {
                        return err;
                    }
                    Halt
                }
                F_OUT => {
                    if rt != Reg::ZERO || rd != Reg::ZERO || shamt != 0 {
                        return err;
                    }
                    Out(rs)
                }
                _ => return err,
            }
        }
        OP_ADDI => Addi(rt, rs, simm),
        OP_SLTI => Slti(rt, rs, simm),
        OP_SLTIU => Sltiu(rt, rs, simm),
        OP_ANDI => Andi(rt, rs, imm),
        OP_ORI => Ori(rt, rs, imm),
        OP_XORI => Xori(rt, rs, imm),
        OP_LUI => {
            if rs != Reg::ZERO {
                return err;
            }
            Lui(rt, imm)
        }
        OP_LW => Lw(rt, rs, simm),
        OP_LH => Lh(rt, rs, simm),
        OP_LHU => Lhu(rt, rs, simm),
        OP_LB => Lb(rt, rs, simm),
        OP_LBU => Lbu(rt, rs, simm),
        OP_SW => Sw(rt, rs, simm),
        OP_SH => Sh(rt, rs, simm),
        OP_SB => Sb(rt, rs, simm),
        OP_BEQ => Beq(rs, rt, simm),
        OP_BNE => Bne(rs, rt, simm),
        OP_BLT => Blt(rs, rt, simm),
        OP_BGE => Bge(rs, rt, simm),
        OP_BLTU => Bltu(rs, rt, simm),
        OP_BGEU => Bgeu(rs, rt, simm),
        OP_J => J(word & 0x03FF_FFFF),
        OP_JAL => Jal(word & 0x03FF_FFFF),
        _ => return err,
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs() -> Vec<Reg> {
        vec![
            Reg::ZERO,
            Reg::V0,
            Reg::A0,
            Reg::new(13).unwrap(),
            Reg::SP,
            Reg::RA,
        ]
    }

    #[test]
    fn roundtrip_exhaustive_shapes() {
        let rs = regs();
        let mut all = Vec::new();
        for &d in &rs {
            for &s in &rs {
                for &t in &rs {
                    all.extend([
                        Instr::Add(d, s, t),
                        Instr::Sub(d, s, t),
                        Instr::Slt(d, s, t),
                        Instr::Mul(d, s, t),
                        Instr::Divu(d, s, t),
                        Instr::Remu(d, s, t),
                        Instr::Sllv(d, s, t),
                    ]);
                }
                for imm in [0i16, 1, -1, 32767, -32768, 1234] {
                    all.extend([
                        Instr::Addi(d, s, imm),
                        Instr::Slti(d, s, imm),
                        Instr::Lw(d, s, imm),
                        Instr::Sb(d, s, imm),
                        Instr::Beq(d, s, imm),
                        Instr::Bgeu(d, s, imm),
                    ]);
                }
                all.push(Instr::Jalr(d, s));
            }
            all.push(Instr::Jr(d));
            all.push(Instr::Out(d));
            all.push(Instr::Lui(d, 0xBEEF));
        }
        all.push(Instr::J(0x00FF_1234));
        all.push(Instr::Jal(0x03FF_FFFF));
        all.push(Instr::Halt);
        for instr in all {
            let w = encode(&instr);
            assert_eq!(decode(w), Ok(instr), "word 0x{w:08x}");
        }
    }

    #[test]
    fn invalid_words_rejected() {
        // Undefined primary opcode.
        assert!(decode(0xFC00_0000).is_err());
        // Undefined funct.
        assert!(decode(0x0000_0001).is_err());
        // jr with non-zero rd field.
        let w = (1u32 << 11) | 0x08;
        assert!(decode(w).is_err());
    }

    #[test]
    fn halt_is_all_funct() {
        assert_eq!(encode(&Instr::Halt), 0x3f);
        assert_eq!(decode(0x3f), Ok(Instr::Halt));
    }
}
