//! A flat binary image format for assembled programs, so workloads can be
//! shipped and loaded without re-assembling.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   "NTPB"            4 bytes
//! version u32 = 1
//! text_base / entry / data_base   3 x u32
//! n_text  u32 (instruction words)
//! n_data  u32 (data bytes)
//! n_syms  u32
//! text    n_text x u32 (encoded instructions)
//! data    n_data bytes
//! symbols n_syms x { addr u32, len u16, name bytes }
//! ```

use crate::{decode, encode, Program};
use std::collections::HashMap;
use std::fmt;

/// Magic bytes identifying an image.
pub const IMAGE_MAGIC: &[u8; 4] = b"NTPB";

/// Current image format version.
pub const IMAGE_VERSION: u32 = 1;

/// Error produced while parsing an image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// The magic bytes or version did not match.
    BadHeader,
    /// The image ended before its declared contents.
    Truncated,
    /// An instruction word failed to decode.
    BadInstruction {
        /// Index of the offending word in the text section.
        index: usize,
        /// The word itself.
        word: u32,
    },
    /// A symbol name was not valid UTF-8.
    BadSymbolName,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::BadHeader => f.write_str("not an NTPB image (bad magic or version)"),
            ImageError::Truncated => f.write_str("image truncated"),
            ImageError::BadInstruction { index, word } => {
                write!(f, "undecodable instruction word #{index}: {word:#010x}")
            }
            ImageError::BadSymbolName => f.write_str("symbol name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ImageError {}

impl Program {
    /// Serializes the program to the flat image format.
    pub fn to_image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(IMAGE_MAGIC);
        out.extend_from_slice(&IMAGE_VERSION.to_le_bytes());
        out.extend_from_slice(&self.text_base.to_le_bytes());
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&self.data_base.to_le_bytes());
        out.extend_from_slice(&(self.instrs.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.symbols.len() as u32).to_le_bytes());
        for i in &self.instrs {
            out.extend_from_slice(&encode(i).to_le_bytes());
        }
        out.extend_from_slice(&self.data);
        // Deterministic symbol order.
        let mut syms: Vec<(&String, &u32)> = self.symbols.iter().collect();
        syms.sort();
        for (name, &addr) in syms {
            out.extend_from_slice(&addr.to_le_bytes());
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out
    }

    /// Parses a program from the flat image format.
    ///
    /// # Errors
    ///
    /// Returns an [`ImageError`] on malformed input.
    pub fn from_image(bytes: &[u8]) -> Result<Program, ImageError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != IMAGE_MAGIC {
            return Err(ImageError::BadHeader);
        }
        if r.u32()? != IMAGE_VERSION {
            return Err(ImageError::BadHeader);
        }
        let text_base = r.u32()?;
        let entry = r.u32()?;
        let data_base = r.u32()?;
        let n_text = r.u32()? as usize;
        let n_data = r.u32()? as usize;
        let n_syms = r.u32()? as usize;

        let mut instrs = Vec::with_capacity(n_text.min(1 << 22));
        for index in 0..n_text {
            let word = r.u32()?;
            let i = decode(word).map_err(|_| ImageError::BadInstruction { index, word })?;
            instrs.push(i);
        }
        let data = r.take(n_data)?.to_vec();
        let mut symbols = HashMap::with_capacity(n_syms.min(1 << 20));
        for _ in 0..n_syms {
            let addr = r.u32()?;
            let len = r.u16()? as usize;
            let name = std::str::from_utf8(r.take(len)?)
                .map_err(|_| ImageError::BadSymbolName)?
                .to_string();
            symbols.insert(name, addr);
        }
        Ok(Program {
            text_base,
            instrs,
            data_base,
            data,
            entry,
            symbols,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        let end = self.pos.checked_add(n).ok_or(ImageError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ImageError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u16(&mut self) -> Result<u16, ImageError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        assemble(
            "
main:   la   t0, table
        lw   v0, 4(t0)
        jal  f
        out  v0
        halt
f:      addi v0, v0, 1
        ret
        .data
table:  .word 10, 20, 30
",
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample();
        let image = p.to_image();
        let back = Program::from_image(&image).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn image_is_deterministic() {
        assert_eq!(sample().to_image(), sample().to_image());
    }

    #[test]
    fn loaded_image_encodes_identically() {
        let p = sample();
        let back = Program::from_image(&p.to_image()).unwrap();
        assert_eq!(back.encode_text(), p.encode_text());
        assert_eq!(back.symbol("table"), p.symbol("table"));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut img = sample().to_image();
        img[0] = b'X';
        assert_eq!(Program::from_image(&img), Err(ImageError::BadHeader));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let img = sample().to_image();
        for cut in [0, 3, 8, 20, img.len() - 1] {
            assert!(
                Program::from_image(&img[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupt_instruction_rejected() {
        let mut img = sample().to_image();
        // First text word starts right after the 32-byte header.
        img[32..36].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        assert!(matches!(
            Program::from_image(&img),
            Err(ImageError::BadInstruction { index: 0, .. })
        ));
    }
}
