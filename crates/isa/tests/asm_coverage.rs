//! Assembler edge cases and error-path coverage.

use ntp_isa::asm::{assemble, assemble_with, AsmOptions};
use ntp_isa::{decode, Instr, Reg};

fn t(n: u8) -> Reg {
    Reg::new(n).unwrap()
}

#[test]
fn all_real_mnemonics_assemble() {
    let src = "
main:   add  t0, t1, t2
        sub  t0, t1, t2
        and  t0, t1, t2
        or   t0, t1, t2
        xor  t0, t1, t2
        nor  t0, t1, t2
        slt  t0, t1, t2
        sltu t0, t1, t2
        sllv t0, t1, t2
        srlv t0, t1, t2
        srav t0, t1, t2
        mul  t0, t1, t2
        div  t0, t1, t2
        divu t0, t1, t2
        rem  t0, t1, t2
        remu t0, t1, t2
        sll  t0, t1, 5
        srl  t0, t1, 5
        sra  t0, t1, 5
        addi t0, t1, -7
        andi t0, t1, 0xFF
        ori  t0, t1, 0xFF
        xori t0, t1, 0xFF
        slti t0, t1, 3
        sltiu t0, t1, 3
        lui  t0, 0x1234
        lw   t0, 0(sp)
        lh   t0, 2(sp)
        lhu  t0, 2(sp)
        lb   t0, 1(sp)
        lbu  t0, 1(sp)
        sw   t0, 0(sp)
        sh   t0, 2(sp)
        sb   t0, 1(sp)
        beq  t0, t1, main
        bne  t0, t1, main
        blt  t0, t1, main
        bge  t0, t1, main
        bltu t0, t1, main
        bgeu t0, t1, main
        j    main
        jal  main
        jr   t0
        jalr t0
        jalr t1, t0
        out  t0
        halt
";
    let p = assemble(src).unwrap();
    assert_eq!(p.instrs.len(), 47);
    // Everything that assembles must also encode and decode back.
    for (k, i) in p.instrs.iter().enumerate() {
        let w = ntp_isa::encode(i);
        assert_eq!(decode(w).as_ref(), Ok(i), "instr {k}");
    }
}

#[test]
fn all_pseudo_mnemonics_assemble() {
    let src = "
main:   nop
        move t0, t1
        mov  t0, t1
        not  t0, t1
        neg  t0, t1
        li   t0, 123456789
        la   t0, main
        subi t0, t1, 5
        b    main
        call main
        ret
        beqz t0, main
        bnez t0, main
        bltz t0, main
        bgez t0, main
        blez t0, main
        bgtz t0, main
        bgt  t0, t1, main
        ble  t0, t1, main
        bgtu t0, t1, main
        bleu t0, t1, main
        halt
";
    let p = assemble(src).unwrap();
    assert_eq!(p.instrs[0], Instr::Sll(Reg::ZERO, Reg::ZERO, 0)); // nop
    assert_eq!(p.instrs[1], Instr::Add(t(8), t(9), Reg::ZERO)); // move
    assert_eq!(p.instrs[3], Instr::Nor(t(8), t(9), Reg::ZERO)); // not
    assert_eq!(p.instrs[4], Instr::Sub(t(8), Reg::ZERO, t(9))); // neg
                                                                // bgt swaps operands into blt.
    let bgt = p
        .instrs
        .iter()
        .find(|i| matches!(i, Instr::Blt(a, b, _) if *a == t(9) && *b == t(8)))
        .copied();
    assert!(bgt.is_some(), "bgt lowered to swapped blt");
}

#[test]
fn numeric_literal_forms() {
    let p =
        assemble("main: li t0, 0x10\n li t1, 0b1010\n li t2, 'A'\n li t3, 1_000\n halt\n").unwrap();
    assert_eq!(p.instrs[0], Instr::Addi(t(8), Reg::ZERO, 16));
    assert_eq!(p.instrs[1], Instr::Addi(t(9), Reg::ZERO, 10));
    assert_eq!(p.instrs[2], Instr::Addi(t(10), Reg::ZERO, 65));
    assert_eq!(p.instrs[3], Instr::Addi(t(11), Reg::ZERO, 1000));
}

#[test]
fn label_arithmetic() {
    let src = "
main:   la   t0, data+8
        lw   t1, %lo(data+4)(t0)
        halt
        .data
data:   .word 1, 2, 3
";
    let p = assemble(src).unwrap();
    let data = p.symbol("data").unwrap();
    assert_eq!(
        p.instrs[1],
        Instr::Ori(t(8), t(8), ((data + 8) & 0xFFFF) as u16)
    );
}

#[test]
fn multiple_labels_per_line() {
    let p = assemble("a: b: main: halt\n").unwrap();
    assert_eq!(p.symbol("a"), p.symbol("b"));
    assert_eq!(p.symbol("b"), p.symbol("main"));
}

#[test]
fn custom_bases() {
    let opts = AsmOptions {
        text_base: 0x0010_0000,
        data_base: 0x2000_0000,
    };
    let p = assemble_with("main: la t0, x\n halt\n.data\nx: .word 9\n", &opts).unwrap();
    assert_eq!(p.text_base, 0x0010_0000);
    assert_eq!(p.symbol("x"), Some(0x2000_0000));
    assert_eq!(p.entry, 0x0010_0000);
}

#[test]
fn error_paths_are_reported() {
    let cases: &[(&str, &str)] = &[
        ("main: addi t0, t1\n", "expected"),          // missing operand
        ("main: add t0, t1, 5\n", "three registers"), // imm where reg needed
        ("main: sll t0, t1, 32\n", "shift amount"),   // shift out of range
        ("main: lw t0, t1\n", "offset(base)"),        // bad mem operand
        ("main: li t0, 0x1_0000_0000\n", "range"),    // 33-bit literal
        ("main: .word 1\n", "outside .data"),         // directive in text
        (".data\nx: addi t0, t0, 1\n", "outside .text"), // instr in data
        ("main: jal\n", "expected a target"),
        ("main: halt extra\n", "no operands"),
        ("main: beq t0, t1, 0x99999998\n", "range"), // far target
        ("main: lw t0, 70000(sp)\n", "16-bit"),      // offset too large
        ("main: .align 3\n", "outside .data"),
        ("x: ; comment only\n j y\n", "undefined"),
    ];
    for (src, needle) in cases {
        let err = assemble(src).unwrap_err();
        assert!(
            err.msg.contains(needle) || err.msg.contains("expected"),
            "source {src:?} gave {err}"
        );
    }
}

#[test]
fn branch_range_limits() {
    // A branch can reach +/-32K instructions; build one just past it.
    let mut src = String::from("main:   beq zero, zero, far\n");
    for _ in 0..40_000 {
        src.push_str("        nop\n");
    }
    src.push_str("far:    halt\n");
    let err = assemble(&src).unwrap_err();
    assert!(err.msg.contains("out of range"), "{err}");
}

#[test]
fn data_alignment_behaviour() {
    let p = assemble("main: halt\n.data\na: .byte 1\n.align 2\nb: .word 2\n.align 3\nc: .word 3\n")
        .unwrap();
    assert_eq!(p.symbol("b").unwrap() % 4, 0);
    assert_eq!(p.symbol("c").unwrap() % 8, 0);
}

/// Property-based coverage; compiled only with `--features proptest` (the
/// dev-dependency is gated so the offline tier-1 build needs no registry).
#[cfg(feature = "proptest")]
mod props {
    use super::decode;
    use proptest::prelude::*;

    proptest! {
        /// The decoder never panics, whatever the word.
        #[test]
        fn decode_total(word in any::<u32>()) {
            let _ = decode(word);
        }

        /// If a word decodes, re-encoding reproduces it or a canonical
        /// equivalent that decodes to the same instruction.
        #[test]
        fn decode_encode_stable(word in any::<u32>()) {
            if let Ok(i) = decode(word) {
                let w2 = ntp_isa::encode(&i);
                prop_assert_eq!(decode(w2), Ok(i));
            }
        }
    }
}
