//! Exit-code contract tests for the `ntp` binary: every failure mode
//! must exit nonzero with a **one-line** `ntp: …` diagnostic on stderr
//! (scripts and CI gates branch on both).

use std::net::TcpListener;
use std::process::{Command, Output};

fn ntp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ntp"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// The stderr diagnostic: prefixed, and on one line (usage text aside).
fn diagnostic(out: &Output) -> String {
    let text = String::from_utf8_lossy(&out.stderr);
    let first = text.lines().next().unwrap_or("").to_string();
    assert!(
        first.starts_with("ntp: "),
        "diagnostic must start with `ntp: `, got {first:?}"
    );
    first
}

#[test]
fn unknown_subcommand_is_refused() {
    let out = ntp(&["launch-missiles"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("unknown command `launch-missiles`"));
}

#[test]
fn bad_flag_values_are_refused() {
    // Non-numeric value for a numeric flag.
    let out = ntp(&["verify", "--points", "several"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("--points"));

    // Zero where at least one is required.
    let out = ntp(&["verify", "--points", "0"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("at least 1"));

    // Bad seed literal.
    let out = ntp(&["verify", "--seed", "0xZZ"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("--seed"));

    // Loadgen with zero sessions.
    let out = ntp(&["loadgen", "--sessions", "0"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("--sessions"));

    // Serve with a hostile worker count dies in config validation.
    let out = ntp(&["serve", "--addr", "127.0.0.1:0", "--workers", "0"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("workers"));
}

/// `ntp serve` on a port something else already owns: nonzero exit and a
/// single diagnostic line naming the address.
#[test]
fn serve_bind_in_use_is_one_clean_error() {
    let holder = TcpListener::bind("127.0.0.1:0").expect("grab a port");
    let addr = holder.local_addr().unwrap().to_string();

    let out = ntp(&["serve", "--addr", &addr]);
    assert!(!out.status.success(), "bind to {addr} must fail");
    let line = diagnostic(&out);
    assert!(
        line.contains("cannot bind") && line.contains(&addr),
        "diagnostic should name the address: {line:?}"
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stderr).lines().count(),
        1,
        "exactly one diagnostic line"
    );
}

/// The metrics sidecar on a port something else already owns: the server
/// must not come up half-configured — nonzero exit, one diagnostic line
/// naming the *metrics* address (distinct from the serving address).
#[test]
fn serve_metrics_bind_in_use_is_one_clean_error() {
    let holder = TcpListener::bind("127.0.0.1:0").expect("grab a port");
    let maddr = holder.local_addr().unwrap().to_string();

    let out = ntp(&["serve", "--addr", "127.0.0.1:0", "--metrics-addr", &maddr]);
    assert!(!out.status.success(), "metrics bind to {maddr} must fail");
    let line = diagnostic(&out);
    assert!(
        line.contains("cannot bind metrics address") && line.contains(&maddr),
        "diagnostic should name the metrics address: {line:?}"
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stderr).lines().count(),
        1,
        "exactly one diagnostic line"
    );
}

/// `ntp route` misconfigurations die with one-line diagnostics: no
/// backends at all, and a router port something else already owns.
#[test]
fn route_misconfigurations_are_refused() {
    let out = ntp(&["route"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("--backends"));

    let out = ntp(&[
        "route",
        "--backends",
        "127.0.0.1:9001,127.0.0.1:9002",
        "--snapshot-dirs",
        "/tmp/only-one",
    ]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("--snapshot-dirs"));

    let holder = TcpListener::bind("127.0.0.1:0").expect("grab a port");
    let addr = holder.local_addr().unwrap().to_string();
    let out = ntp(&["route", "--addr", &addr, "--backends", "127.0.0.1:9001"]);
    assert!(!out.status.success(), "bind to {addr} must fail");
    let line = diagnostic(&out);
    assert!(
        line.contains("cannot bind") && line.contains(&addr),
        "diagnostic should name the address: {line:?}"
    );
}

/// `ntp loadgen` against a dead address: nonzero with an i/o diagnostic,
/// before any records are replayed. Uses a port we bound and dropped, so
/// nothing is listening.
#[test]
fn loadgen_unreachable_server_is_refused() {
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("grab a port");
        l.local_addr().unwrap().to_string()
        // listener drops here; the port is free but silent
    };
    // An invalid design point is diagnosed before any connection attempt.
    let out = ntp(&["loadgen", "--addr", &addr, "--bits", "9"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("paper(9,7)"));
}

/// `ntp top` against a dead address: nonzero with a one-line diagnostic
/// naming the address; a bad `--interval` is refused before connecting.
#[test]
fn top_unreachable_server_is_refused() {
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("grab a port");
        l.local_addr().unwrap().to_string()
    };
    let out = ntp(&["top", "--addr", &addr, "--once"]);
    assert!(!out.status.success());
    let line = diagnostic(&out);
    assert!(
        line.contains("top: cannot connect") && line.contains(&addr),
        "diagnostic should name the address: {line:?}"
    );

    let out = ntp(&["top", "--addr", &addr, "--interval", "0"]);
    assert!(!out.status.success());
    assert!(diagnostic(&out).contains("--interval"));
}
