//! End-to-end tests of the `ntp` binary: assemble → image → disassemble →
//! run → predict, via real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ntp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ntp"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ntp-cli-test-{}-{name}", std::process::id()));
    p
}

const SAMPLE: &str = "
main:   li   s0, 25
        li   v0, 0
loop:   add  v0, v0, s0
        addi s0, s0, -1
        bnez s0, loop
        out  v0
        halt
";

#[test]
fn asm_run_roundtrip() {
    let src = tmp("sum.s");
    let bin = tmp("sum.bin");
    std::fs::write(&src, SAMPLE).unwrap();

    let out = ntp(&["asm", src.to_str().unwrap(), "-o", bin.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("instructions"));

    // Run from source and from the image: identical output (sum 1..=25).
    for input in [&src, &bin] {
        let out = ntp(&["run", input.to_str().unwrap()]);
        assert!(out.status.success());
        assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "325");
    }
    let _ = std::fs::remove_file(src);
    let _ = std::fs::remove_file(bin);
}

#[test]
fn dis_produces_assembly() {
    let src = tmp("dis.s");
    std::fs::write(&src, SAMPLE).unwrap();
    let out = ntp(&["dis", src.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("addi"));
    assert!(text.contains("bne"));
    assert!(text.contains("halt"));
    let _ = std::fs::remove_file(src);
}

#[test]
fn predict_reports_rates() {
    let out = ntp(&["predict", "@compress", "--depth", "3", "--budget", "300000"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("path-based predictor (2^15, depth 3)"));
    assert!(text.contains("sequential baseline"));
    assert!(text.contains("% misprediction"));
}

#[test]
fn workloads_lists_six() {
    let out = ntp(&["workloads"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["compress", "cc", "go", "jpeg", "m88ksim", "xlisp"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn errors_exit_nonzero() {
    assert!(!ntp(&[]).status.success());
    assert!(!ntp(&["frobnicate"]).status.success());
    assert!(!ntp(&["run", "/nonexistent/file.s"]).status.success());
    assert!(!ntp(&["predict", "@nosuch"]).status.success());

    let bad = tmp("bad.s");
    std::fs::write(&bad, "main: bogus t0\n").unwrap();
    let out = ntp(&["asm", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bogus"));
    let _ = std::fs::remove_file(bad);
}

#[test]
fn trace_dumps_trace_stream() {
    let out = ntp(&["trace", "@m88ksim", "--budget", "5000", "--limit", "10"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() <= 10);
    assert!(text.contains("len="));
    assert!(text.contains("hashed=0x"));
}
