//! `ntp` — the command-line front end to the toolchain.
//!
//! ```text
//! ntp asm <file.s> [-o out.bin]        assemble to a flat NTPB image
//! ntp dis <file.s|file.bin>            disassemble
//! ntp run <file.s|file.bin> [--budget N]
//! ntp predict <file.s|file.bin|@workload> [--depth D] [--bits B] [--budget N]
//! ntp trace <file.s|file.bin|@workload> [--budget N] [--limit N]
//! ntp workloads                        list the built-in benchmarks
//! ```

use ntp_core::{evaluate, NextTracePredictor, PredictorConfig};
use ntp_isa::{asm::assemble, disasm, Program, IMAGE_MAGIC};
use ntp_sim::Machine;
use ntp_trace::{run_traces, TraceConfig, TraceRecord, TraceStats};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ntp: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "asm" => cmd_asm(rest),
        "dis" => cmd_dis(rest),
        "run" => cmd_run(rest),
        "predict" => cmd_predict(rest),
        "trace" => cmd_trace(rest),
        "workloads" => cmd_workloads(),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     ntp asm <file.s> [-o out.bin]\n  \
     ntp dis <file.s|file.bin>\n  \
     ntp run <file.s|file.bin> [--budget N]\n  \
     ntp predict <file.s|file.bin|@workload> [--depth D] [--bits B] [--budget N]\n  \
     ntp trace <file.s|file.bin|@workload> [--budget N] [--limit N]\n  \
     ntp workloads"
        .to_string()
}

/// Loads a program from a source file, an NTPB image, or `@workload`.
fn load(spec: &str) -> Result<Program, String> {
    if let Some(name) = spec.strip_prefix('@') {
        let names = ["compress", "cc", "go", "jpeg", "m88ksim", "xlisp"];
        if !names.contains(&name) {
            return Err(format!("unknown workload `{name}` (see `ntp workloads`)"));
        }
        return Ok(ntp_workloads::by_name(name, ntp_workloads::ScalePreset::Tiny).program);
    }
    let bytes = std::fs::read(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
    if bytes.starts_with(IMAGE_MAGIC) {
        return Program::from_image(&bytes).map_err(|e| format!("{spec}: {e}"));
    }
    let src = String::from_utf8(bytes).map_err(|_| format!("{spec}: not UTF-8 assembly"))?;
    assemble(&src).map_err(|e| format!("{spec}:{e}"))
}

fn flag_value(rest: &[String], name: &str) -> Result<Option<u64>, String> {
    for pair in rest.windows(2) {
        if pair[0] == name {
            return pair[1]
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} expects a number, got `{}`", pair[1]));
        }
    }
    Ok(None)
}

fn positional(rest: &[String]) -> Result<&str, String> {
    rest.iter()
        .take_while(|a| !a.starts_with('-'))
        .map(String::as_str)
        .next()
        .ok_or_else(|| format!("missing input file\n{}", usage()))
}

fn cmd_asm(rest: &[String]) -> Result<(), String> {
    let input = positional(rest)?;
    let out = rest
        .windows(2)
        .find(|p| p[0] == "-o")
        .map(|p| p[1].clone())
        .unwrap_or_else(|| format!("{}.bin", input.trim_end_matches(".s")));
    let program = load(input)?;
    std::fs::write(&out, program.to_image()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{out}: {} instructions, {} data bytes, entry {:#010x}",
        program.len(),
        program.data.len(),
        program.entry
    );
    Ok(())
}

fn cmd_dis(rest: &[String]) -> Result<(), String> {
    let program = load(positional(rest)?)?;
    print!(
        "{}",
        disasm::disassemble_block(&program.encode_text(), program.text_base)
    );
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let program = load(positional(rest)?)?;
    let budget = flag_value(rest, "--budget")?.unwrap_or(100_000_000);
    let mut machine = Machine::new(program);
    let stop = machine.run(budget).map_err(|e| e.to_string())?;
    for v in machine.output() {
        println!("{v}");
    }
    eprintln!(
        "[{} after {} instructions]",
        match stop {
            ntp_sim::StopReason::Halted => "halted",
            ntp_sim::StopReason::BudgetExhausted => "budget exhausted",
        },
        machine.icount()
    );
    Ok(())
}

fn cmd_predict(rest: &[String]) -> Result<(), String> {
    let program = load(positional(rest)?)?;
    let budget = flag_value(rest, "--budget")?.unwrap_or(10_000_000);
    let depth = flag_value(rest, "--depth")?.unwrap_or(7) as usize;
    let bits = flag_value(rest, "--bits")?.unwrap_or(15) as u32;

    let mut machine = Machine::new(program);
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut stats = TraceStats::new();
    let mut sequential = ntp_baselines::SequentialTracePredictor::paper();
    run_traces(&mut machine, budget, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
        stats.record(t);
        sequential.observe(t);
    })
    .map_err(|e| e.to_string())?;

    let mut predictor = NextTracePredictor::new(PredictorConfig::paper(bits, depth));
    let result = evaluate(&mut predictor, &records);

    println!(
        "instructions: {}   traces: {}   avg trace length: {:.1}   static traces: {}",
        machine.icount(),
        stats.traces(),
        stats.avg_trace_len(),
        stats.static_traces()
    );
    println!(
        "path-based predictor (2^{bits}, depth {depth}): {:.2}% misprediction",
        result.mispredict_pct()
    );
    println!(
        "  sources: correlated {}  secondary {}  cold {}",
        result.from_correlated, result.from_secondary, result.cold
    );
    println!(
        "idealized sequential baseline:           {:.2}% misprediction",
        sequential.stats().trace_mispredict_pct()
    );
    Ok(())
}

fn cmd_trace(rest: &[String]) -> Result<(), String> {
    let program = load(positional(rest)?)?;
    let budget = flag_value(rest, "--budget")?.unwrap_or(100_000);
    let limit = flag_value(rest, "--limit")?.unwrap_or(64) as usize;
    let mut machine = Machine::new(program);
    let mut printed = 0usize;
    let mut total = 0u64;
    run_traces(&mut machine, budget, TraceConfig::default(), |t| {
        total += 1;
        if printed < limit {
            println!(
                "{:<24} len={:<3} calls={} hashed={}{}",
                t.id().to_string(),
                t.len(),
                t.call_count(),
                t.id().hashed(),
                if t.ends_in_return() {
                    "  ret"
                } else if t.ends_in_indirect() {
                    "  ind"
                } else {
                    ""
                }
            );
            printed += 1;
        }
    })
    .map_err(|e| e.to_string())?;
    if total as usize > printed {
        eprintln!("[{} more traces; raise --limit]", total as usize - printed);
    }
    Ok(())
}

fn cmd_workloads() -> Result<(), String> {
    for w in ntp_workloads::suite(ntp_workloads::ScalePreset::Tiny) {
        println!("{:<10}{}", w.name, w.analog_of);
    }
    println!("\nuse as `ntp predict @<name>`");
    Ok(())
}
