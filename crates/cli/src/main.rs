//! `ntp` — the command-line front end to the toolchain.
//!
//! ```text
//! ntp asm <file.s> [-o out.bin]        assemble to a flat NTPB image
//! ntp dis <file.s|file.bin>            disassemble
//! ntp run <file.s|file.bin> [--budget N]
//! ntp predict <file.s|file.bin|@workload> [--depth D] [--bits B] [--budget N]
//! ntp trace <file.s|file.bin|@workload> [--budget N] [--limit N]
//! ntp report <file.s|file.bin|@workload> [--budget N] [--depth D] [--bits B] [--json <path|->]
//! ntp verify [--seed 0xC0FFEE] [--points N]
//! ntp capture [--dir <path>] [--verify]
//! ntp snapshot save <file.s|file.bin|@workload> -o <out.nts>
//!              [--bits B] [--depth D] [--budget N] [--json <path|->]
//! ntp snapshot verify <file.nts> [--json <path|->]
//! ntp serve [--addr host:port] [--workers N] [--max-conns N]
//!           [--event-threads N] [--queue-depth N]
//!           [--metrics-addr host:port] [--stats-interval S]
//!           [--warm <file.nts|dir>] [--snapshot-on-drain <dir>]
//!           [--snapshot-interval S]
//! ntp route --backends a1,a2[,...] [--addr host:port]
//!           [--snapshot-dirs d1,d2[,...]] [--vnodes N] [--probe-interval S]
//!           [--max-conns N] [--migrate session:<to|next>:after]
//! ntp loadgen [--addr host:port] [--sessions N] [--clients N] [--chunk N]
//!             [--bits B] [--depth D] [--shutdown] [--json <path|->]
//!             [--open-loop] [--rate R] [--duration S] [--zipf Z] [--seed S]
//! ntp top [--addr host:port] [--interval S] [--once] [--json] [--cluster]
//!         [--shutdown]
//! ntp workloads                        list the built-in benchmarks
//! ```

use ntp_core::{
    evaluate, evaluate_with_sink, predictor_section, NextTracePredictor, PredictorConfig,
};
use ntp_engine::{DelayedUpdateEngine, EngineConfig};
use ntp_isa::{asm::assemble, disasm, Program, IMAGE_MAGIC};
use ntp_sim::Machine;
use ntp_telemetry::{Json, NullSink, PhaseTimes, Report, RunManifest, ScopeTimer, ToJson};
use ntp_trace::{run_traces, TraceConfig, TraceRecord, TraceStats};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ntp: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "asm" => cmd_asm(rest),
        "dis" => cmd_dis(rest),
        "run" => cmd_run(rest),
        "predict" => cmd_predict(rest),
        "trace" => cmd_trace(rest),
        "report" => cmd_report(rest),
        "verify" => cmd_verify(rest),
        "capture" => cmd_capture(rest),
        "snapshot" => cmd_snapshot(rest),
        "serve" => cmd_serve(rest),
        "route" => cmd_route(rest),
        "loadgen" => cmd_loadgen(rest),
        "top" => cmd_top(rest),
        "workloads" => cmd_workloads(),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     ntp asm <file.s> [-o out.bin]\n  \
     ntp dis <file.s|file.bin>\n  \
     ntp run <file.s|file.bin> [--budget N]\n  \
     ntp predict <file.s|file.bin|@workload> [--depth D] [--bits B] [--budget N]\n  \
     ntp trace <file.s|file.bin|@workload> [--budget N] [--limit N]\n  \
     ntp report <file.s|file.bin|@workload> [--budget N] [--depth D] [--bits B] [--json <path|->]\n  \
     ntp verify [--seed 0xC0FFEE] [--points N]\n  \
     ntp capture [--dir <path>] [--verify]\n  \
     ntp snapshot save <file.s|file.bin|@workload> -o <out.nts> \
     [--bits B] [--depth D] [--budget N] [--json <path|->]\n  \
     ntp snapshot verify <file.nts> [--json <path|->]\n  \
     ntp serve [--addr host:port] [--workers N] [--max-conns N] \
     [--event-threads N] [--queue-depth N] \
     [--metrics-addr host:port] [--stats-interval S] \
     [--warm <file.nts|dir>] [--snapshot-on-drain <dir>] [--snapshot-interval S]\n  \
     ntp route --backends a1,a2[,...] [--addr host:port] \
     [--snapshot-dirs d1,d2[,...]] [--vnodes N] [--probe-interval S] \
     [--max-conns N] [--migrate session:<to|next>:after]\n  \
     ntp loadgen [--addr host:port] [--sessions N] [--clients N] [--chunk N] \
     [--bits B] [--depth D] [--shutdown] [--json <path|->] \
     [--open-loop] [--rate R] [--duration S] [--zipf Z] [--seed S]\n  \
     ntp top [--addr host:port] [--interval S] [--once] [--json] [--cluster] [--shutdown]\n  \
     ntp workloads"
        .to_string()
}

/// Loads a program from a source file, an NTPB image, or `@workload`.
fn load(spec: &str) -> Result<Program, String> {
    if let Some(name) = spec.strip_prefix('@') {
        let names = ["compress", "cc", "go", "jpeg", "m88ksim", "xlisp"];
        if !names.contains(&name) {
            return Err(format!("unknown workload `{name}` (see `ntp workloads`)"));
        }
        return Ok(ntp_workloads::by_name(name, ntp_workloads::ScalePreset::Tiny).program);
    }
    let bytes = std::fs::read(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
    if bytes.starts_with(IMAGE_MAGIC) {
        return Program::from_image(&bytes).map_err(|e| format!("{spec}: {e}"));
    }
    let src = String::from_utf8(bytes).map_err(|_| format!("{spec}: not UTF-8 assembly"))?;
    assemble(&src).map_err(|e| format!("{spec}:{e}"))
}

fn flag_value(rest: &[String], name: &str) -> Result<Option<u64>, String> {
    for pair in rest.windows(2) {
        if pair[0] == name {
            return pair[1]
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} expects a number, got `{}`", pair[1]));
        }
    }
    Ok(None)
}

fn positional(rest: &[String]) -> Result<&str, String> {
    rest.iter()
        .take_while(|a| !a.starts_with('-'))
        .map(String::as_str)
        .next()
        .ok_or_else(|| format!("missing input file\n{}", usage()))
}

fn cmd_asm(rest: &[String]) -> Result<(), String> {
    let input = positional(rest)?;
    let out = rest
        .windows(2)
        .find(|p| p[0] == "-o")
        .map(|p| p[1].clone())
        .unwrap_or_else(|| format!("{}.bin", input.trim_end_matches(".s")));
    let program = load(input)?;
    std::fs::write(&out, program.to_image()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "{out}: {} instructions, {} data bytes, entry {:#010x}",
        program.len(),
        program.data.len(),
        program.entry
    );
    Ok(())
}

fn cmd_dis(rest: &[String]) -> Result<(), String> {
    let program = load(positional(rest)?)?;
    print!(
        "{}",
        disasm::disassemble_block(&program.encode_text(), program.text_base)
    );
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let program = load(positional(rest)?)?;
    let budget = flag_value(rest, "--budget")?.unwrap_or(100_000_000);
    let mut machine = Machine::new(program);
    let stop = machine.run(budget).map_err(|e| e.to_string())?;
    for v in machine.output() {
        println!("{v}");
    }
    eprintln!(
        "[{} after {} instructions]",
        match stop {
            ntp_sim::StopReason::Halted => "halted",
            ntp_sim::StopReason::BudgetExhausted => "budget exhausted",
        },
        machine.icount()
    );
    Ok(())
}

fn cmd_predict(rest: &[String]) -> Result<(), String> {
    let program = load(positional(rest)?)?;
    let budget = flag_value(rest, "--budget")?.unwrap_or(10_000_000);
    let depth = flag_value(rest, "--depth")?.unwrap_or(7) as usize;
    let bits = flag_value(rest, "--bits")?.unwrap_or(15) as u32;

    let mut machine = Machine::new(program);
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut stats = TraceStats::new();
    let mut sequential = ntp_baselines::SequentialTracePredictor::paper();
    run_traces(&mut machine, budget, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
        stats.record(t);
        sequential.observe(t);
    })
    .map_err(|e| e.to_string())?;

    let cfg = PredictorConfig::try_paper(bits, depth).map_err(|e| e.to_string())?;
    let mut predictor = NextTracePredictor::try_new(cfg).map_err(|e| e.to_string())?;
    let result = evaluate(&mut predictor, &records);

    println!(
        "instructions: {}   traces: {}   avg trace length: {:.1}   static traces: {}",
        machine.icount(),
        stats.traces(),
        stats.avg_trace_len(),
        stats.static_traces()
    );
    println!(
        "path-based predictor (2^{bits}, depth {depth}): {:.2}% misprediction",
        result.mispredict_pct()
    );
    println!(
        "  sources: correlated {}  secondary {}  cold {}",
        result.from_correlated, result.from_secondary, result.cold
    );
    println!(
        "idealized sequential baseline:           {:.2}% misprediction",
        sequential.stats().trace_mispredict_pct()
    );
    Ok(())
}

fn cmd_trace(rest: &[String]) -> Result<(), String> {
    let program = load(positional(rest)?)?;
    let budget = flag_value(rest, "--budget")?.unwrap_or(100_000);
    let limit = flag_value(rest, "--limit")?.unwrap_or(64) as usize;
    let mut machine = Machine::new(program);
    let mut printed = 0usize;
    let mut total = 0u64;
    run_traces(&mut machine, budget, TraceConfig::default(), |t| {
        total += 1;
        if printed < limit {
            println!(
                "{:<24} len={:<3} calls={} hashed={}{}",
                t.id().to_string(),
                t.len(),
                t.call_count(),
                t.id().hashed(),
                if t.ends_in_return() {
                    "  ret"
                } else if t.ends_in_indirect() {
                    "  ind"
                } else {
                    ""
                }
            );
            printed += 1;
        }
    })
    .map_err(|e| e.to_string())?;
    if total as usize > printed {
        eprintln!("[{} more traces; raise --limit]", total as usize - printed);
    }
    Ok(())
}

/// Scans for `--json <value>`, returning the string verbatim (unlike
/// [`flag_value`], which parses numbers).
fn flag_str<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.windows(2)
        .find(|p| p[0] == name)
        .map(|p| p[1].as_str())
}

/// Simulates `spec`, replays the predictor and the delayed-update engine
/// over the captured trace stream, and bundles everything into a
/// machine-readable [`Report`] (the same shape `BENCH_*.json` files use —
/// see OBSERVABILITY.md).
fn build_report(spec: &str, budget: u64, bits: u32, depth: usize) -> Result<Report, String> {
    // Reject a hostile design point before the (expensive) simulation, with
    // the typed diagnostic instead of a panic.
    let cfg = PredictorConfig::try_paper(bits, depth).map_err(|e| e.to_string())?;
    let program = load(spec)?;
    let mut phases = PhaseTimes::new();
    let mut machine = Machine::new(program);
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut stats = TraceStats::new();
    {
        let _t = ScopeTimer::new(&mut phases, "simulate");
        run_traces(&mut machine, budget, TraceConfig::default(), |t| {
            records.push(TraceRecord::from(t));
            stats.record(t);
        })
        .map_err(|e| e.to_string())?;
    }

    let mut report = Report::new(RunManifest::capture(
        spec.trim_start_matches('@'),
        "cli",
        budget,
        &format!("paper({bits},{depth})"),
    ));
    report.phases_mut().merge(&phases);
    report.section(
        "capture",
        Json::object()
            .with("icount", Json::U64(machine.icount()))
            .with("records", Json::U64(records.len() as u64)),
    );
    report.section("trace_stats", stats.to_json());

    // The predictor replay and the delayed-update engine are independent
    // passes over the same captured records, so fan them out over the
    // `NTP_THREADS` worker pool. Results come back in submission order, so
    // section order, phase names, and all numbers are identical at any
    // thread count; only the wall-clock phase durations vary.
    enum Pass {
        Replay(
            Box<(
                NextTracePredictor,
                ntp_core::PredictorStats,
                ntp_telemetry::Histogram,
            )>,
        ),
        Engine(ntp_engine::EngineStats),
    }
    let passes = ntp_runner::map_ordered(&[0usize, 1], |_, &k| {
        let t0 = std::time::Instant::now();
        let pass = if k == 0 {
            let mut predictor = NextTracePredictor::new(cfg);
            let (pstats, streaks) = evaluate_with_sink(&mut predictor, &records, &mut NullSink);
            Pass::Replay(Box::new((predictor, pstats, streaks)))
        } else {
            Pass::Engine(
                DelayedUpdateEngine::new(NextTracePredictor::new(cfg), EngineConfig::default())
                    .run(&records),
            )
        };
        (pass, t0.elapsed())
    });
    for (pass, dur) in passes {
        match pass {
            Pass::Replay(boxed) => {
                let (predictor, pstats, streaks) = *boxed;
                report.phases_mut().add("replay", dur);
                report.section("predictor", predictor_section(&predictor, &pstats));
                report.section("mispredict_streaks", streaks.to_json());
            }
            Pass::Engine(stats) => {
                report.phases_mut().add("engine", dur);
                report.section("engine", stats.to_json());
            }
        }
    }
    Ok(report)
}

fn cmd_report(rest: &[String]) -> Result<(), String> {
    let input = positional(rest)?;
    let budget = flag_value(rest, "--budget")?.unwrap_or(10_000_000);
    let depth = flag_value(rest, "--depth")?.unwrap_or(7) as usize;
    let bits = flag_value(rest, "--bits")?.unwrap_or(15) as u32;
    let report = build_report(input, budget, bits, depth)?;

    match flag_str(rest, "--json") {
        Some("-") => {
            println!("{}", report.to_json().pretty());
        }
        Some(path) => {
            let mut text = report.to_json().pretty();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("[json] wrote {path}");
        }
        None => {
            let j = report.to_json();
            let pct = |sec: &str, key: &str| {
                j.get(sec)
                    .and_then(|s| s.get("stats"))
                    .or_else(|| j.get(sec))
                    .and_then(|s| s.get(key))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            println!(
                "{}: {} traces from {} instructions",
                input,
                j.get("capture")
                    .and_then(|c| c.get("records"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                j.get("capture")
                    .and_then(|c| c.get("icount"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            );
            println!(
                "predictor paper({bits},{depth}): {:.2}% misprediction",
                pct("predictor", "mispredict_pct")
            );
            println!("engine: {}", engine_line(&j));
            println!("phases: {}", report.phases().summary_line());
            println!("(re-run with `--json -` for the full machine-readable report)");
        }
    }
    Ok(())
}

/// One-line engine summary pulled back out of the JSON tree.
fn engine_line(j: &Json) -> String {
    let get = |key: &str| {
        j.get("engine")
            .and_then(|e| e.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    format!(
        "ipc {:.2}, squash cycles {}",
        get("ipc"),
        get("squash_cycles")
    )
}

/// Scans for `--seed <value>`, accepting decimal or `0x`-prefixed hex.
fn flag_seed(rest: &[String], name: &str, default: u64) -> Result<u64, String> {
    let Some(text) = flag_str(rest, name) else {
        return Ok(default);
    };
    let parsed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|_| format!("{name} expects a decimal or 0x-hex number, got `{text}`"))
}

/// `ntp verify`: the differential-testing and fault-injection sweep
/// (see VERIFICATION.md). Exit status is nonzero when any oracle reports a
/// divergence, so this doubles as a CI gate — `scripts/check.sh` pins
/// `--seed 0xC0FFEE`.
fn cmd_verify(rest: &[String]) -> Result<(), String> {
    let seed = flag_seed(rest, "--seed", 0xC0FFEE)?;
    let points = flag_value(rest, "--points")?.unwrap_or(64) as usize;
    if points == 0 {
        return Err("--points must be at least 1".to_string());
    }
    let report = ntp_verify::run_all(seed, points);
    println!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} divergence(s); re-run with `--seed {seed:#x}` to reproduce",
            report.total_divergences()
        ))
    }
}

/// `ntp capture`: pre-warms (or, with `--verify`, audits) the persistent
/// trace-capture cache for the whole suite at the environment-selected
/// scale and budget (see EXPERIMENTS.md, "Persistent trace cache").
///
/// Without `--dir` the directory comes from `NTP_TRACE_CACHE`, falling
/// back to the default `.ntp-cache/` so `ntp capture` is useful even
/// before the environment knob is set.
fn cmd_capture(rest: &[String]) -> Result<(), String> {
    let dir = match flag_str(rest, "--dir") {
        Some(d) => PathBuf::from(d),
        None => ntp_tracefile::cache_dir_from_env()
            .unwrap_or_else(|| PathBuf::from(ntp_tracefile::DEFAULT_CACHE_DIR)),
    };
    if rest.iter().any(|a| a == "--verify") {
        return capture_verify(&dir);
    }
    let data = ntp_bench::capture_suite_in(Some(&dir));
    for d in &data {
        println!(
            "{:<10}{:>12} instrs {:>10} traces",
            d.name,
            d.icount,
            d.records.len()
        );
    }
    let c = ntp_tracefile::counters();
    println!("[cache] {}: {}", dir.display(), c.summary_line());
    Ok(())
}

/// `ntp capture --verify`: decodes and validates every suite cache file
/// without simulating. Missing or invalid files make the exit status
/// nonzero, so this doubles as a CI audit of a pre-warmed cache.
fn capture_verify(dir: &Path) -> Result<(), String> {
    let scale = ntp_bench::scale_from_env();
    let budget = ntp_bench::budget_from_env();
    let (mut missing, mut invalid) = (0u32, 0u32);
    for w in ntp_workloads::suite(scale) {
        let fp = ntp_bench::capture_fingerprint(&w, budget, &TraceConfig::default());
        let path = dir.join(fp.file_name());
        match ntp_tracefile::format::read_file(&path, &fp) {
            Ok((artifact, bytes)) => println!(
                "{:<10}ok       {:>10} traces {:>12} bytes  {}",
                w.name,
                artifact.records.len(),
                bytes,
                path.display()
            ),
            Err(ntp_tracefile::TraceFileError::Io(e))
                if e.kind() == std::io::ErrorKind::NotFound =>
            {
                println!("{:<10}missing  {}", w.name, path.display());
                missing += 1;
            }
            Err(e) => {
                println!("{:<10}INVALID  {} ({e})", w.name, path.display());
                invalid += 1;
            }
        }
    }
    if invalid > 0 || missing > 0 {
        Err(format!(
            "cache audit failed under {}: {invalid} invalid, {missing} missing \
             (run `ntp capture` to pre-warm)",
            dir.display()
        ))
    } else {
        println!("[cache] {}: all suite entries valid", dir.display());
        Ok(())
    }
}

/// `ntp snapshot`: save and verify `.nts` predictor-state snapshots
/// (see SERVING.md, "Predictor state snapshots").
///
/// * `save` trains a `paper(bits, depth)` predictor on the workload's
///   captured trace stream and writes the learned state as a
///   single-session snapshot (session id 0, ready for `ntp serve
///   --warm`);
/// * `verify` decodes a snapshot, rebuilds every session's predictor
///   from it, and reports per-session statistics. Any refusal —
///   corruption, truncation, version skew, state that does not fit its
///   embedded config — is a nonzero exit, so this doubles as the
///   snapshot gate in `scripts/check.sh`.
///
/// Both subcommands emit the same `--json` shape, derived from the
/// instantiated predictors: diffing `save --json` against a later
/// `verify --json` proves the on-disk round trip preserved stats and
/// table state.
fn cmd_snapshot(rest: &[String]) -> Result<(), String> {
    match rest.first().map(String::as_str) {
        Some("save") => snapshot_save(&rest[1..]),
        Some("verify") => snapshot_verify(&rest[1..]),
        Some(other) => Err(format!(
            "unknown snapshot subcommand `{other}`\n{}",
            usage()
        )),
        None => Err(format!("snapshot needs `save` or `verify`\n{}", usage())),
    }
}

/// Renders the canonical per-session JSON both snapshot subcommands
/// print: stats plus occupancy of the *instantiated* predictor, so a
/// verify after a save re-derives every number from the decoded state.
fn snapshot_json(artifact: &ntp_tracefile::SnapshotArtifact) -> Result<Json, String> {
    let mut sessions = Vec::with_capacity(artifact.sessions.len());
    for s in &artifact.sessions {
        let predictor = s
            .instantiate()
            .map_err(|e| format!("session {}: {e}", s.session_id))?;
        let occ = predictor.occupancy();
        sessions.push(
            Json::object()
                .with("session", Json::U64(s.session_id))
                .with("config", Json::Str(ntp_tracefile::config_canon(&s.config)))
                .with("predictions", Json::U64(s.stats.predictions))
                .with("correct", Json::U64(s.stats.correct))
                .with("mispredict_pct", Json::F64(s.stats.mispredict_pct()))
                .with("corr_valid", Json::U64(occ.corr_valid))
                .with("sec_valid", Json::U64(occ.sec_valid)),
        );
    }
    Ok(Json::object()
        .with("sessions", Json::Array(sessions))
        .with("session_count", Json::U64(artifact.sessions.len() as u64)))
}

/// Writes or prints the snapshot JSON per the `--json` flag, and prints
/// the one-line-per-session summary otherwise.
fn snapshot_report(
    rest: &[String],
    artifact: &ntp_tracefile::SnapshotArtifact,
) -> Result<(), String> {
    let j = snapshot_json(artifact)?;
    match flag_str(rest, "--json") {
        Some("-") => println!("{}", j.pretty()),
        Some(path) => {
            let mut text = j.pretty();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("[json] wrote {path}");
        }
        None => {
            for s in &artifact.sessions {
                println!(
                    "session {:<6} {:>10} predictions  {:>6.2}% mispredict  {}",
                    s.session_id,
                    s.stats.predictions,
                    s.stats.mispredict_pct(),
                    ntp_tracefile::config_canon(&s.config)
                );
            }
        }
    }
    Ok(())
}

/// `ntp snapshot save`: capture, train, persist.
fn snapshot_save(rest: &[String]) -> Result<(), String> {
    let input = positional(rest)?;
    let out = flag_str(rest, "-o")
        .map(PathBuf::from)
        .ok_or_else(|| format!("snapshot save needs -o <out.nts>\n{}", usage()))?;
    let budget = flag_value(rest, "--budget")?.unwrap_or(10_000_000);
    let depth = flag_value(rest, "--depth")?.unwrap_or(7) as usize;
    let bits = flag_value(rest, "--bits")?.unwrap_or(15) as u32;
    let cfg = PredictorConfig::try_paper(bits, depth).map_err(|e| e.to_string())?;

    let program = load(input)?;
    let mut machine = Machine::new(program);
    let mut records: Vec<TraceRecord> = Vec::new();
    run_traces(&mut machine, budget, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
    })
    .map_err(|e| e.to_string())?;

    let mut predictor = NextTracePredictor::try_new(cfg).map_err(|e| e.to_string())?;
    let stats = evaluate(&mut predictor, &records);
    let artifact = ntp_tracefile::SnapshotArtifact {
        sessions: vec![ntp_tracefile::SessionSnapshot::capture(
            0, &predictor, &stats,
        )],
    };
    let bytes = ntp_tracefile::write_snapshot_file(&out, &artifact)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    eprintln!(
        "[snapshot] {}: 1 session, {} records trained, {} bytes",
        out.display(),
        records.len(),
        bytes
    );
    snapshot_report(rest, &artifact)
}

/// `ntp snapshot verify`: decode, rebuild, report — nonzero on refusal.
fn snapshot_verify(rest: &[String]) -> Result<(), String> {
    let input = positional(rest)?;
    let (artifact, bytes) =
        ntp_tracefile::read_snapshot_file(Path::new(input)).map_err(|e| format!("{input}: {e}"))?;
    eprintln!(
        "[snapshot] {input}: {} session(s), {bytes} bytes, all states restore",
        artifact.sessions.len()
    );
    snapshot_report(rest, &artifact)
}

/// Scans for `<name> <seconds>` (fractional allowed, must be > 0).
fn flag_seconds(rest: &[String], name: &str) -> Result<Option<std::time::Duration>, String> {
    let Some(text) = flag_str(rest, name) else {
        return Ok(None);
    };
    let secs: f64 = text
        .parse()
        .map_err(|_| format!("{name} expects seconds, got `{text}`"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("{name} must be a positive number of seconds"));
    }
    Ok(Some(std::time::Duration::from_secs_f64(secs)))
}

/// `ntp serve`: runs the sharded prediction service until a client sends
/// a `Shutdown` frame (see SERVING.md). Defaults come from
/// `NTP_SERVE_ADDR` / `NTP_SERVE_WORKERS` / `NTP_SERVE_MAX_CONNS` /
/// `NTP_SERVE_METRICS_ADDR` / `NTP_SERVE_STATS_INTERVAL` /
/// `NTP_SERVE_WARM` / `NTP_SERVE_SNAPSHOT_DIR`, and flags override the
/// environment. The bound addresses are printed on stdout — with
/// `--addr 127.0.0.1:0` the kernel picks the port, so scripts parse
/// these lines to find it. `--warm` preloads sessions from a `.nts`
/// snapshot (file or directory); `--snapshot-on-drain` writes one
/// `shard<k>.nts` per shard at graceful shutdown, and
/// `--snapshot-interval` additionally rewrites them every S seconds
/// while serving (bounding what a hard failure can lose). SIGTERM
/// drains gracefully, same as a client `Shutdown` frame.
fn cmd_serve(rest: &[String]) -> Result<(), String> {
    let mut cfg = ntp_serve::ServeConfig::from_env();
    if let Some(addr) = flag_str(rest, "--addr") {
        cfg.addr = addr.to_string();
    }
    if let Some(workers) = flag_value(rest, "--workers")? {
        cfg.workers = workers as usize;
    }
    if let Some(max_conns) = flag_value(rest, "--max-conns")? {
        cfg.max_conns = max_conns as usize;
    }
    if let Some(threads) = flag_value(rest, "--event-threads")? {
        // 0 explicitly selects the blocking thread-per-connection frontend.
        cfg.event_threads = threads as usize;
    }
    if let Some(depth) = flag_value(rest, "--queue-depth")? {
        if depth == 0 {
            return Err("--queue-depth must be at least 1".to_string());
        }
        cfg.queue_depth = depth as usize;
    }
    if let Some(maddr) = flag_str(rest, "--metrics-addr") {
        cfg.metrics_addr = Some(maddr.to_string());
    }
    if let Some(interval) = flag_seconds(rest, "--stats-interval")? {
        cfg.stats_interval = Some(interval);
    }
    if let Some(warm) = flag_str(rest, "--warm") {
        cfg.warm_path = Some(PathBuf::from(warm));
    }
    if let Some(dir) = flag_str(rest, "--snapshot-on-drain") {
        cfg.snapshot_dir = Some(PathBuf::from(dir));
    }
    if let Some(interval) = flag_seconds(rest, "--snapshot-interval")? {
        cfg.snapshot_interval = Some(interval);
    }
    let handle = ntp_serve::serve(cfg.clone()).map_err(|e| e.to_string())?;
    println!(
        "[serve] listening on {} ({} workers, {} max conns)",
        handle.local_addr(),
        cfg.workers,
        cfg.max_conns
    );
    if let Some(maddr) = handle.metrics_local_addr() {
        println!("[serve] metrics on {maddr}");
    }
    // SIGTERM drains the server exactly like a client `Shutdown` frame:
    // in-flight sessions finish, snapshots (if configured) land on
    // disk, and the drain marker is written — the contract the cluster
    // router's graceful failover leans on.
    if ntp_serve::install_sigterm_drain() {
        let trigger = handle.shutdown_trigger();
        let _ = std::thread::Builder::new()
            .name("ntp-sigterm".into())
            .spawn(move || loop {
                if ntp_serve::sigterm_pending() {
                    trigger.trigger();
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            });
    }
    let summary = handle.join();
    println!(
        "[serve] drained: {} sessions, {} requests, {} conns accepted, \
         {} refused, {} busy replies, {} protocol errors, {} resyncs, \
         {} read timeouts, {} sockopt errors, {} partial reads",
        summary.sessions,
        summary.requests,
        summary.accepted,
        summary.refused,
        summary.busy,
        summary.protocol_errors,
        summary.resyncs,
        summary.read_timeouts,
        summary.sockopt_errors,
        summary.partial_reads
    );
    for s in &summary.per_shard {
        println!(
            "[serve]   shard {}: {} sessions, {} requests, {} predictions \
             ({} correct), {} errors, {} batched, {} coalesced, {} warmed, \
             {} snapshotted",
            s.shard,
            s.sessions,
            s.requests,
            s.predictions,
            s.correct,
            s.errors,
            s.batched,
            s.coalesced,
            s.warmed,
            s.snapshotted
        );
    }
    Ok(())
}

/// `ntp route`: the cluster router — one listener fronting N `ntp
/// serve` backends behind consistent-hash session placement, live
/// migration and snapshot-backed failover (see SERVING.md § Cluster).
/// `--snapshot-dirs` names each backend's `--snapshot-on-drain`
/// directory, positionally aligned with `--backends` (`-` for a backend
/// without one); failover restores sessions from there. `--migrate
/// S:B:N` schedules one scripted migration: session S moves to backend
/// B after N of its frames have been forwarded.
fn cmd_route(rest: &[String]) -> Result<(), String> {
    let Some(backends) = flag_str(rest, "--backends") else {
        return Err(format!(
            "route: --backends a1,a2[,...] is required\n{}",
            usage()
        ));
    };
    let dirs: Vec<Option<PathBuf>> = match flag_str(rest, "--snapshot-dirs") {
        Some(list) => list
            .split(',')
            .map(|d| match d.trim() {
                "" | "-" => None,
                d => Some(PathBuf::from(d)),
            })
            .collect(),
        None => Vec::new(),
    };
    let specs: Vec<ntp_cluster::BackendSpec> = backends
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .enumerate()
        .map(|(i, addr)| ntp_cluster::BackendSpec {
            addr: addr.to_string(),
            snapshot_dir: dirs.get(i).cloned().flatten(),
        })
        .collect();
    if !dirs.is_empty() && dirs.len() != specs.len() {
        return Err(format!(
            "route: --snapshot-dirs names {} director{} for {} backends",
            dirs.len(),
            if dirs.len() == 1 { "y" } else { "ies" },
            specs.len()
        ));
    }
    let mut cfg = ntp_cluster::RouterConfig::new(specs);
    if let Some(addr) = flag_str(rest, "--addr") {
        cfg.addr = addr.to_string();
    }
    if let Some(vnodes) = flag_value(rest, "--vnodes")? {
        cfg.vnodes = vnodes as usize;
    }
    if let Some(interval) = flag_seconds(rest, "--probe-interval")? {
        cfg.probe_interval = interval;
    }
    if let Some(max_conns) = flag_value(rest, "--max-conns")? {
        cfg.max_conns = max_conns as usize;
    }
    if let Some(spec) = flag_str(rest, "--migrate") {
        let parts: Vec<&str> = spec.split(':').collect();
        let parsed = match parts.as_slice() {
            [s, b, n] => {
                let to = match *b {
                    "next" => Some(None),
                    b => b.parse().ok().map(Some),
                };
                s.parse()
                    .ok()
                    .zip(to)
                    .zip(n.parse().ok())
                    .map(|((s, b), n)| (s, b, n))
            }
            _ => None,
        };
        let Some((session, to, after_frames)) = parsed else {
            return Err(format!(
                "route: --migrate expects session:<backend|next>:after_frames, got `{spec}`"
            ));
        };
        cfg.migrate_trigger = Some(ntp_cluster::MigrateTrigger {
            session,
            to,
            after_frames,
        });
    }
    let n = cfg.backends.len();
    let handle = ntp_cluster::start(cfg)?;
    println!(
        "[route] listening on {} ({n} backend{})",
        handle.local_addr(),
        if n == 1 { "" } else { "s" }
    );
    let summary = handle.join();
    println!(
        "[route] drained: {} sessions, {} forwarded, {} migrations, \
         {} failovers, {} errors, {} sessions lost, {} restored",
        summary.sessions,
        summary.forwarded,
        summary.migrations,
        summary.failovers,
        summary.errors,
        summary.sessions_lost,
        summary.sessions_restored
    );
    Ok(())
}

/// `ntp top`: a live view of a running server's per-shard runtime
/// metrics, polled over the `Metrics` frame (see SERVING.md). With
/// `--json` each poll prints the raw snapshot instead of the table;
/// `--once` polls a single time, and `--shutdown` drains the server
/// after the final poll. `--cluster` points it at an `ntp route`
/// process instead, rendering the `route.*` counters and the
/// per-backend forwarding/latency table.
fn cmd_top(rest: &[String]) -> Result<(), String> {
    let addr = flag_str(rest, "--addr").unwrap_or(ntp_serve::config::DEFAULT_ADDR);
    let interval =
        flag_seconds(rest, "--interval")?.unwrap_or_else(|| std::time::Duration::from_secs(2));
    let once = rest.iter().any(|a| a == "--once");
    let as_json = rest.iter().any(|a| a == "--json");
    let cluster = rest.iter().any(|a| a == "--cluster");

    let mut client = ntp_serve::Client::connect(addr)
        .map_err(|e| format!("top: cannot connect to {addr}: {e}"))?;
    loop {
        let text = client.metrics_json().map_err(|e| format!("top: {e}"))?;
        let snap = ntp_telemetry::json::parse(&text)
            .map_err(|e| format!("top: bad metrics reply: {e}"))?;
        if cluster && snap.get("router").is_none() {
            return Err(format!(
                "top: {addr} is not a router (no `router` metrics section) — \
                 drop --cluster or point --addr at an `ntp route` process"
            ));
        }
        if as_json {
            println!("{}", snap.pretty());
        } else {
            if !once {
                // Repaint in place, like top(1).
                print!("\x1b[H\x1b[2J");
            }
            if cluster {
                print_cluster_top(addr, &snap);
            } else {
                print_top(addr, &snap);
            }
        }
        if once {
            break;
        }
        std::thread::sleep(interval);
    }
    if rest.iter().any(|a| a == "--shutdown") {
        client
            .shutdown_server()
            .map_err(|e| format!("top: shutdown: {e}"))?;
    }
    Ok(())
}

/// Renders one metrics snapshot as the `ntp top` table.
fn print_top(addr: &str, snap: &Json) {
    let counter = |sec: &str, name: &str| {
        snap.get(sec)
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let gauge = |sec: &str, name: &str| {
        snap.get(sec)
            .and_then(|s| s.get("gauges"))
            .and_then(|g| g.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let latency = |sec: &str, field: &str| {
        snap.get(sec)
            .and_then(|s| s.get("histograms"))
            .and_then(|h| h.get("latency_us.all"))
            .and_then(|h| h.get(field))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let frames = |sec: &str| -> u64 {
        FRAME_NAMES
            .iter()
            .map(|f| counter(sec, &format!("frames.{f}")))
            .sum()
    };
    let errors = |sec: &str| -> u64 {
        counter(sec, "errors.unknown_session")
            + counter(sec, "errors.bad_config")
            + counter(sec, "errors.other")
    };

    println!(
        "ntp top — {addr}  up {:.0}s  conns {} (refused {})  busy {}  \
         protocol errors {}  resyncs {}  read timeouts {}  sockopt errors {}",
        gauge("server", "uptime_s"),
        counter("server", "conns.accepted"),
        counter("server", "conns.refused"),
        counter("server", "busy.replies"),
        counter("server", "protocol.errors"),
        counter("server", "resyncs"),
        counter("server", "conn.read_timeouts"),
        counter("server", "conn.sockopt_errors"),
    );
    println!(
        "{:<7}{:>9}{:>10}{:>12}{:>9}{:>8}{:>8}{:>8}{:>7}{:>8}",
        "shard",
        "qps",
        "frames",
        "predictions",
        "sessions",
        "p50us",
        "p99us",
        "p999us",
        "queue",
        "errors"
    );
    let (mut shard, mut qps_sum, mut queue_sum) = (0usize, 0.0f64, 0.0f64);
    loop {
        let sec = format!("shard{shard}");
        if snap.get(&sec).is_none() {
            break;
        }
        let wsec = format!("{sec}.window");
        let qps = counter(&wsec, "frames") as f64 / counter(&wsec, "epochs").max(1) as f64;
        let queue = gauge(&sec, "queue.depth");
        qps_sum += qps;
        queue_sum += queue;
        println!(
            "{:<7}{:>9.1}{:>10}{:>12}{:>9}{:>8}{:>8}{:>8}{:>7.0}{:>8}",
            shard,
            qps,
            frames(&sec),
            counter(&sec, "predictions"),
            counter(&sec, "sessions.opened"),
            latency(&sec, "p50"),
            latency(&sec, "p99"),
            latency(&sec, "p999"),
            queue,
            errors(&sec),
        );
        shard += 1;
    }
    println!(
        "{:<7}{:>9.1}{:>10}{:>12}{:>9}{:>8}{:>8}{:>8}{:>7.0}{:>8}",
        "total",
        qps_sum,
        frames("total"),
        counter("total", "predictions"),
        counter("total", "sessions.opened"),
        latency("total", "p50"),
        latency("total", "p99"),
        latency("total", "p999"),
        queue_sum,
        errors("total"),
    );
}

/// Frame kinds as named in the shard metrics registries.
const FRAME_NAMES: [&str; 6] = ["hello", "predict", "update", "batch", "stats", "migrate"];

/// Renders one router metrics snapshot as the `ntp top --cluster`
/// table: the `route.*` counters up top, one row per backend below
/// (cumulative plus the rolling-window rate and latency percentiles).
fn print_cluster_top(addr: &str, snap: &Json) {
    let counter = |sec: &str, name: &str| {
        snap.get(sec)
            .and_then(|s| s.get("counters"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let gauge = |sec: &str, name: &str| {
        snap.get(sec)
            .and_then(|s| s.get("gauges"))
            .and_then(|g| g.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let latency = |sec: &str, field: &str| {
        snap.get(sec)
            .and_then(|s| s.get("histograms"))
            .and_then(|h| h.get("latency_us"))
            .and_then(|h| h.get(field))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };

    println!(
        "ntp route — {addr}  up {:.0}s  sessions {}  forwarded {}  \
         migrations {}  failovers {}  errors {}  lost {}  restored {}  \
         conns {} (refused {})",
        gauge("router", "uptime_s"),
        counter("router", "route.sessions"),
        counter("router", "route.forwarded"),
        counter("router", "route.migrations"),
        counter("router", "route.failovers"),
        counter("router", "route.errors"),
        counter("router", "route.sessions_lost"),
        counter("router", "route.sessions_restored"),
        counter("router", "conns.accepted"),
        counter("router", "conns.refused"),
    );
    println!(
        "{:<9}{:>7}{:>9}{:>11}{:>9}{:>8}{:>8}{:>8}",
        "backend", "alive", "qps", "forwarded", "errors", "p50us", "p99us", "p999us"
    );
    let mut k = 0usize;
    loop {
        let sec = format!("backend{k}");
        if snap.get(&sec).is_none() {
            break;
        }
        let wsec = format!("{sec}.window");
        let qps = counter(&wsec, "forwarded") as f64 / counter(&wsec, "epochs").max(1) as f64;
        println!(
            "{:<9}{:>7}{:>9.1}{:>11}{:>9}{:>8}{:>8}{:>8}",
            k,
            if counter(&sec, "alive") == 1 {
                "yes"
            } else {
                "no"
            },
            qps,
            counter(&sec, "forwarded"),
            counter(&sec, "errors"),
            latency(&sec, "p50"),
            latency(&sec, "p99"),
            latency(&sec, "p999"),
        );
        k += 1;
    }
}

/// Scans for `<name> <value>` as a positive finite float.
fn flag_float(rest: &[String], name: &str) -> Result<Option<f64>, String> {
    let Some(text) = flag_str(rest, name) else {
        return Ok(None);
    };
    let v: f64 = text
        .parse()
        .map_err(|_| format!("{name} expects a number, got `{text}`"))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("{name} must be a positive number"));
    }
    Ok(Some(v))
}

/// `ntp loadgen`: replays the captured benchmark suite as concurrent
/// wire sessions against a running `ntp serve`, then checks every
/// session's served statistics against the offline oracle **exactly**
/// (see SERVING.md). Exit status is nonzero on any divergence, so this
/// doubles as the serving gate in `scripts/check.sh`. Records come from
/// the same persistent trace cache as `ntp capture`, so a pre-warmed
/// cache makes this simulation-free.
///
/// With `--open-loop` the generator switches from closed-loop replay to
/// a fixed-rate arrival schedule with Zipf session popularity: requests
/// go out on schedule whether or not earlier replies are back, `Busy`
/// replies are shed (not retried), and latency is measured from the
/// *scheduled* send time — so queueing delay under overload shows up in
/// p99/p99.9 instead of being coordinated away.
fn cmd_loadgen(rest: &[String]) -> Result<(), String> {
    let mut cfg = ntp_serve::LoadgenConfig::default();
    if let Some(addr) = flag_str(rest, "--addr") {
        cfg.addr = addr.to_string();
    }
    if let Some(clients) = flag_value(rest, "--clients")? {
        cfg.clients = clients as usize;
    }
    if let Some(chunk) = flag_value(rest, "--chunk")? {
        cfg.chunk = chunk as usize;
    }
    if let Some(bits) = flag_value(rest, "--bits")? {
        cfg.bits = bits as u32;
    }
    if let Some(depth) = flag_value(rest, "--depth")? {
        cfg.depth = depth as u32;
    }
    let sessions = flag_value(rest, "--sessions")?.unwrap_or(4) as usize;
    if sessions == 0 {
        return Err("--sessions must be at least 1".to_string());
    }
    // Reject a hostile design point before the (expensive) suite capture.
    PredictorConfig::try_paper(cfg.bits, cfg.depth as usize)
        .map_err(|e| format!("paper({},{}): {e}", cfg.bits, cfg.depth))?;

    // One stream per benchmark, cycled until `--sessions` are filled.
    let data = ntp_bench::capture_suite_in(ntp_tracefile::cache_dir_from_env().as_deref());
    let specs: Vec<ntp_serve::SessionSpec> = (0..sessions)
        .map(|i| {
            let d = &data[i % data.len()];
            ntp_serve::SessionSpec {
                name: format!("{}#{}", d.name, i),
                records: d.records.clone(),
            }
        })
        .collect();

    if rest.iter().any(|a| a == "--open-loop") {
        return loadgen_open_loop(rest, &cfg, &specs);
    }

    let report = ntp_serve::loadgen::run(&cfg, &specs).map_err(|e| e.to_string())?;

    if rest.iter().any(|a| a == "--shutdown") {
        let mut client =
            ntp_serve::Client::connect(&cfg.addr).map_err(|e| format!("shutdown: {e}"))?;
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
    }

    match flag_str(rest, "--json") {
        Some("-") => println!("{}", report.to_json().pretty()),
        Some(path) => {
            let mut text = report.to_json().pretty();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("[json] wrote {path}");
        }
        None => {}
    }

    for s in &report.sessions {
        println!(
            "{:<14} shard {}  {:>8} records  {:>6.2}% mispredict  oracle {}",
            s.name,
            s.shard,
            s.served.predictions,
            s.served.mispredict_pct(),
            if s.matches() { "match" } else { "MISMATCH" }
        );
    }
    println!(
        "[loadgen] {} sessions, {} requests, {} records in {:.1} ms: \
         {:.0} req/s, {:.0} records/s, latency p50 {} us p99 {} us \
         p99.9 {} us max {} us, {} busy retries",
        report.sessions.len(),
        report.requests,
        report.records,
        report.wall.as_secs_f64() * 1e3,
        report.qps(),
        report.records_per_sec(),
        report.latency_us.p50(),
        report.latency_us.p99(),
        report.latency_us.p999(),
        report.latency_us.max(),
        report.busy_retries
    );
    if !report.drain_batched.is_empty() {
        let total: u64 = report.drain_batched.iter().sum();
        let per: Vec<String> = report
            .drain_batched
            .iter()
            .enumerate()
            .map(|(k, n)| format!("shard {k}: {n}"))
            .collect();
        println!(
            "[loadgen] {} requests resolved via batched drains ({})",
            total,
            per.join(", ")
        );
    }
    if report.all_match() {
        println!("[loadgen] served == offline oracle for every session");
        Ok(())
    } else {
        let bad = report.sessions.iter().filter(|s| !s.matches()).count();
        Err(format!(
            "{bad} session(s) diverged from the offline oracle (served != evaluate)"
        ))
    }
}

/// The `--open-loop` arm of `ntp loadgen`: fixed-rate Zipf schedule,
/// shed `Busy` replies, scheduled-send-time latency, exact oracle check
/// over the applied subsequence.
fn loadgen_open_loop(
    rest: &[String],
    cfg: &ntp_serve::LoadgenConfig,
    specs: &[ntp_serve::SessionSpec],
) -> Result<(), String> {
    let mut ocfg = ntp_serve::OpenLoopConfig {
        addr: cfg.addr.clone(),
        conns: cfg.clients,
        bits: cfg.bits,
        depth: cfg.depth,
        ..ntp_serve::OpenLoopConfig::default()
    };
    if let Some(rate) = flag_float(rest, "--rate")? {
        ocfg.rate = rate;
    }
    if let Some(duration) = flag_seconds(rest, "--duration")? {
        ocfg.duration = duration;
    }
    if let Some(zipf) = flag_float(rest, "--zipf")? {
        ocfg.zipf = zipf;
    }
    ocfg.seed = flag_seed(rest, "--seed", ocfg.seed)?;

    let report = ntp_serve::run_open_loop(&ocfg, specs).map_err(|e| e.to_string())?;

    if rest.iter().any(|a| a == "--shutdown") {
        let mut client =
            ntp_serve::Client::connect(&ocfg.addr).map_err(|e| format!("shutdown: {e}"))?;
        client
            .shutdown_server()
            .map_err(|e| format!("shutdown: {e}"))?;
    }

    match flag_str(rest, "--json") {
        Some("-") => println!("{}", report.to_json().pretty()),
        Some(path) => {
            let mut text = report.to_json().pretty();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("[json] wrote {path}");
        }
        None => {}
    }

    for s in &report.sessions {
        println!(
            "{:<14} shard {}  {:>8} sent  {:>8} applied  {:>7} busy  oracle {}",
            s.name,
            s.shard,
            s.sent,
            s.applied,
            s.busy,
            if s.matches() { "match" } else { "MISMATCH" }
        );
    }
    println!(
        "[loadgen] open loop: offered {} ({:.0}/s over {:.1}s, zipf {}, seed {:#x}), \
         applied {} ({:.0}/s achieved), {} busy, {} late sends",
        report.offered,
        report.offered_qps(),
        ocfg.duration.as_secs_f64(),
        ocfg.zipf,
        ocfg.seed,
        report.applied,
        report.achieved_qps(),
        report.busy,
        report.late
    );
    println!(
        "[loadgen] sojourn latency p50 {} us p99 {} us p99.9 {} us max {} us \
         (schedule digest {:016x})",
        report.latency_us.p50(),
        report.latency_us.p99(),
        report.latency_us.p999(),
        report.latency_us.max(),
        report.schedule_digest
    );
    if report.all_match() {
        println!("[loadgen] served == lockstep oracle over the applied subsequence");
        Ok(())
    } else {
        let bad = report.sessions.iter().filter(|s| !s.matches()).count();
        Err(format!(
            "{bad} session(s) diverged from the lockstep oracle under open loop"
        ))
    }
}

fn cmd_workloads() -> Result<(), String> {
    for w in ntp_workloads::suite(ntp_workloads::ScalePreset::Tiny) {
        println!("{:<10}{}", w.name, w.analog_of);
    }
    println!("\nuse as `ntp predict @<name>`");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `ntp report @compress --json -` round-trips through the JSON
    /// parser: the pretty-printed report re-parses into the same values.
    #[test]
    fn report_json_round_trips_through_parser() {
        let report = build_report("@compress", 300_000, 15, 7).expect("report builds");
        let text = report.to_json().pretty();
        let parsed = ntp_telemetry::json::parse(&text).expect("report parses");
        let icount = parsed
            .get("capture")
            .and_then(|c| c.get("icount"))
            .and_then(Json::as_u64)
            .expect("capture.icount present");
        assert!(icount > 0);
        for key in [
            "manifest",
            "phases_ms",
            "capture",
            "trace_stats",
            "predictor",
            "mispredict_streaks",
            "engine",
        ] {
            assert!(parsed.get(key).is_some(), "missing section {key}");
        }
        assert!(parsed
            .get("predictor")
            .and_then(|p| p.get("stats"))
            .and_then(|s| s.get("mispredict_pct"))
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn flag_str_finds_values() {
        let args: Vec<String> = ["x", "--json", "-", "--budget", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_str(&args, "--json"), Some("-"));
        assert_eq!(flag_str(&args, "--budget"), Some("5"));
        assert_eq!(flag_str(&args, "--depth"), None);
    }
}
