//! McFarling's combining branch predictor (DEC WRL TN-36, 1993), cited by
//! the paper as reference [6]: a bimodal predictor and a gshare predictor
//! run in parallel, and a table of two-bit *chooser* counters — indexed by
//! the branch PC — learns which component to trust per branch.

use crate::{Bimodal, DirectionPredictor, Gshare, PatternHistoryTable};

/// The McFarling combining predictor.
///
/// # Examples
///
/// ```
/// use ntp_baselines::{Combining, DirectionPredictor};
/// let mut p = Combining::new(12);
/// p.update(0x0040_0000, true);
/// let _ = p.predict(0x0040_0000);
/// ```
#[derive(Clone, Debug)]
pub struct Combining {
    bimodal: Bimodal,
    gshare: Gshare,
    /// Chooser counters: ≥2 means "trust gshare".
    chooser: PatternHistoryTable,
}

impl Combining {
    /// Creates a combining predictor where each component table (and the
    /// chooser) has `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is out of range (see
    /// [`PatternHistoryTable::new`]).
    pub fn new(index_bits: u32) -> Combining {
        Combining {
            bimodal: Bimodal::new(index_bits),
            gshare: Gshare::new(index_bits),
            chooser: PatternHistoryTable::new(index_bits),
        }
    }

    fn trusts_gshare(&self, pc: u32) -> bool {
        self.chooser.predict(pc >> 2)
    }
}

impl DirectionPredictor for Combining {
    fn predict(&self, pc: u32) -> bool {
        if self.trusts_gshare(pc) {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let g = self.gshare.predict(pc);
        let b = self.bimodal.predict(pc);
        // Train the chooser only when the components disagree: move toward
        // whichever was right.
        if g != b {
            self.chooser.update(pc >> 2, g == taken);
        }
        self.gshare.update(pc, taken);
        self.bimodal.update(pc, taken);
    }

    fn reset(&mut self) {
        self.bimodal.reset();
        self.gshare.reset();
        self.chooser.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run<P: DirectionPredictor>(p: &mut P, seq: &[(u32, bool)], rounds: usize) -> u32 {
        let mut wrong = 0;
        for _ in 0..rounds {
            for &(pc, taken) in seq {
                if p.predict(pc) != taken {
                    wrong += 1;
                }
                p.update(pc, taken);
            }
        }
        wrong
    }

    /// A mix: one strongly biased branch (bimodal's strength, which gshare
    /// history pollution can hurt) and one history-correlated branch
    /// (gshare's strength).
    fn mixed_seq(n: usize) -> Vec<(u32, bool)> {
        let mut out = Vec::new();
        for k in 0..n {
            out.push((0x100, true)); // always taken
            out.push((0x200, k % 2 == 0)); // alternating
                                           // A noisy branch that churns global history.
            let noise = (k.wrapping_mul(2654435761)) >> 13 & 1 == 1;
            out.push((0x300, noise));
        }
        out
    }

    #[test]
    fn combining_at_least_matches_both_components() {
        let seq = mixed_seq(2000);
        let c = run(&mut Combining::new(12), &seq, 1);
        let g = run(&mut Gshare::new(12), &seq, 1);
        let b = run(&mut Bimodal::new(12), &seq, 1);
        assert!(
            c <= g.min(b) + seq.len() as u32 / 50,
            "combining {c} vs gshare {g} vs bimodal {b}"
        );
    }

    #[test]
    fn chooser_learns_per_branch() {
        // Branch A: biased (bimodal perfect, gshare suffers from noisy
        // history aliasing in a tiny table). Branch B: alternating
        // (gshare perfect, bimodal ~50%).
        let mut p = Combining::new(10);
        let seq = mixed_seq(3000);
        run(&mut p, &seq, 1); // warm up
        let wrong = run(&mut p, &seq[seq.len() - 600..], 1);
        // After warm-up the only real misses should be on the noise branch.
        assert!(
            wrong < 300,
            "combining should nail branches A and B: {wrong}"
        );
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut p = Combining::new(8);
        for _ in 0..10 {
            p.update(0x40, true);
        }
        assert!(p.predict(0x40));
        p.reset();
        assert!(!p.predict(0x40), "weakly not-taken after reset");
    }
}
