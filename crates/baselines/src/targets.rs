//! Target predictors: return address stacks and the correlated
//! indirect-target buffer of Chang, Hao & Patt (ISCA 1997).

/// A return address stack. The paper's sequential baseline uses a *perfect*
/// return predictor; a bounded stack is provided for ablations.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<u32>,
    max_depth: Option<usize>,
}

impl ReturnAddressStack {
    /// An unbounded (perfect, never-overflowing) stack.
    pub fn perfect() -> ReturnAddressStack {
        ReturnAddressStack {
            stack: Vec::new(),
            max_depth: None,
        }
    }

    /// A bounded stack that discards its oldest entry on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn bounded(depth: usize) -> ReturnAddressStack {
        assert!(depth > 0, "RAS depth must be nonzero");
        ReturnAddressStack {
            stack: Vec::with_capacity(depth),
            max_depth: Some(depth),
        }
    }

    /// Pushes a return address (at a call).
    pub fn push(&mut self, return_addr: u32) {
        if let Some(cap) = self.max_depth {
            if self.stack.len() == cap {
                self.stack.remove(0);
            }
        }
        self.stack.push(return_addr);
    }

    /// Pops the predicted return target (at a return); `None` on underflow.
    pub fn pop(&mut self) -> Option<u32> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Empties the stack.
    pub fn reset(&mut self) {
        self.stack.clear();
    }
}

/// A correlated indirect-target buffer: a table of last-seen targets indexed
/// by the jump PC XORed with a path history of recent indirect targets
/// (after Chang, Hao & Patt's "target cache"). The paper's baseline uses a
/// 4K-entry instance.
#[derive(Clone, Debug)]
pub struct IndirectTargetBuffer {
    targets: Vec<u32>,
    hist: u32,
    hist_bits: u32,
}

impl IndirectTargetBuffer {
    /// Creates a buffer with `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> IndirectTargetBuffer {
        assert!((1..=24).contains(&index_bits));
        IndirectTargetBuffer {
            targets: vec![0; 1 << index_bits],
            hist: 0,
            hist_bits: index_bits.min(12),
        }
    }

    /// The paper's 4K-entry configuration.
    pub fn paper() -> IndirectTargetBuffer {
        IndirectTargetBuffer::new(12)
    }

    fn index(&self, pc: u32) -> usize {
        (((pc >> 2) ^ self.hist) as usize) & (self.targets.len() - 1)
    }

    /// Predicted target for the indirect jump at `pc` (0 if never trained —
    /// treated as a miss by callers since 0 is not a valid text address).
    pub fn predict(&self, pc: u32) -> u32 {
        self.targets[self.index(pc)]
    }

    /// Trains with the actual target and shifts it into the path history.
    pub fn update(&mut self, pc: u32, target: u32) {
        let idx = self.index(pc);
        self.targets[idx] = target;
        let mask = (1u32 << self.hist_bits) - 1;
        self.hist = ((self.hist << 2) ^ (target >> 2)) & mask;
    }

    /// Forgets all state.
    pub fn reset(&mut self) {
        self.targets.fill(0);
        self.hist = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ras_matches_call_return_nesting() {
        let mut ras = ReturnAddressStack::perfect();
        ras.push(0x104);
        ras.push(0x204);
        assert_eq!(ras.pop(), Some(0x204));
        assert_eq!(ras.pop(), Some(0x104));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn bounded_ras_discards_oldest() {
        let mut ras = ReturnAddressStack::bounded(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "entry 1 was discarded");
    }

    #[test]
    fn itb_learns_stable_target() {
        let mut itb = IndirectTargetBuffer::new(8);
        for _ in 0..3 {
            itb.update(0x500, 0x900);
        }
        // Same history state recurs when the update pattern is periodic.
        let p = itb.predict(0x500);
        assert_eq!(p, 0x900);
    }

    #[test]
    fn itb_correlates_on_target_path() {
        // A dispatch jump whose target alternates; the preceding indirect
        // target disambiguates.
        let mut itb = IndirectTargetBuffer::new(10);
        let mut wrong = 0;
        let mut last = 0x900;
        for round in 0..60 {
            let next = if last == 0x900 { 0xA00 } else { 0x900 };
            if round > 20 && itb.predict(0x500) != next {
                wrong += 1;
            }
            itb.update(0x500, next);
            last = next;
        }
        assert!(
            wrong <= 2,
            "correlated ITB tracks alternating targets: {wrong}"
        );
    }

    #[test]
    fn reset_clears() {
        let mut itb = IndirectTargetBuffer::new(6);
        itb.update(0x500, 0x900);
        itb.reset();
        assert_eq!(itb.predict(0x500), 0);
    }
}
