//! A realizable multiple-branch predictor in the style of Patel, Friendly &
//! Patt: one PHT access per trace, with each entry holding six two-bit
//! counters so all embedded branches are predicted simultaneously.
//!
//! The index is the trace's start PC XORed with a global branch history
//! register (gshare-style). Because all counters are read in one access,
//! later branches cannot see the outcomes of earlier ones — the accuracy
//! cost that motivates explicit next-trace prediction.

use crate::{IndirectTargetBuffer, ReturnAddressStack};
use ntp_isa::ControlKind;
use ntp_trace::{Trace, MAX_TRACE_BRANCHES};

/// Per-trace multiple-branch predictor statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiBranchStats {
    /// Traces observed.
    pub traces: u64,
    /// Traces with any wrong direction or indirect-target prediction.
    pub trace_mispredicts: u64,
    /// Conditional branches observed.
    pub branches: u64,
    /// Directions predicted wrong.
    pub branch_mispredicts: u64,
}

impl MultiBranchStats {
    /// Trace misprediction rate in percent.
    pub fn trace_mispredict_pct(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            100.0 * self.trace_mispredicts as f64 / self.traces as f64
        }
    }
}

/// A trace-indexed gshare predicting up to six branch directions per access.
///
/// # Examples
///
/// ```
/// use ntp_baselines::TraceGshare;
/// let p = TraceGshare::new(14);
/// assert_eq!(p.stats().traces, 0);
/// ```
#[derive(Clone, Debug)]
pub struct TraceGshare {
    pht: Vec<[u8; MAX_TRACE_BRANCHES]>,
    bhr: u32,
    index_bits: u32,
    itb: IndirectTargetBuffer,
    ras: ReturnAddressStack,
    stats: MultiBranchStats,
}

impl TraceGshare {
    /// Creates a predictor with `2^index_bits` PHT entries (each holding six
    /// counters), a 4K-entry indirect-target buffer and a perfect RAS.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> TraceGshare {
        assert!((1..=24).contains(&index_bits));
        TraceGshare {
            pht: vec![[1; MAX_TRACE_BRANCHES]; 1 << index_bits],
            bhr: 0,
            index_bits,
            itb: IndirectTargetBuffer::paper(),
            ras: ReturnAddressStack::perfect(),
            stats: MultiBranchStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MultiBranchStats {
        &self.stats
    }

    fn index(&self, start_pc: u32) -> usize {
        (((start_pc >> 2) ^ self.bhr) as usize) & (self.pht.len() - 1)
    }

    /// Observes one completed trace: predicts all its branch directions in
    /// a single access, plus any trailing indirect target, then trains.
    pub fn observe(&mut self, trace: &Trace) {
        let idx = self.index(trace.id().start_pc);
        let mut wrong = false;

        let mut branch_i = 0usize;
        for c in trace.controls() {
            match c.kind {
                ControlKind::CondBranch => {
                    self.stats.branches += 1;
                    let pred = self.pht[idx][branch_i] >= 2;
                    if pred != c.taken {
                        self.stats.branch_mispredicts += 1;
                        wrong = true;
                    }
                    branch_i += 1;
                }
                ControlKind::Call => self.ras.push(c.pc.wrapping_add(4)),
                ControlKind::IndirectJump | ControlKind::IndirectCall => {
                    if self.itb.predict(c.pc) != c.target {
                        wrong = true;
                    }
                    self.itb.update(c.pc, c.target);
                    if c.kind == ControlKind::IndirectCall {
                        self.ras.push(c.pc.wrapping_add(4));
                    }
                }
                ControlKind::Return => {
                    // Perfect return prediction, as in the paper's baseline.
                    let _ = self.ras.pop();
                }
                ControlKind::Jump | ControlKind::None => {}
            }
        }

        // Train the counters and shift actual outcomes into the history.
        for (branch_i, c) in trace.cond_branches().enumerate() {
            let ctr = &mut self.pht[idx][branch_i];
            if c.taken {
                *ctr = (*ctr + 1).min(3);
            } else {
                *ctr = ctr.saturating_sub(1);
            }
            self.bhr = ((self.bhr << 1) | c.taken as u32) & ((1 << self.index_bits) - 1);
        }

        self.stats.traces += 1;
        if wrong {
            self.stats.trace_mispredicts += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SequentialTracePredictor;
    use ntp_isa::asm::assemble;
    use ntp_sim::Machine;
    use ntp_trace::{run_traces, TraceConfig};

    #[test]
    fn learns_a_biased_loop() {
        let src = "
main:   li   t0, 4000
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut mb = TraceGshare::new(14);
        run_traces(&mut m, 100_000, TraceConfig::default(), |t| mb.observe(t)).unwrap();
        assert!(mb.stats().trace_mispredict_pct() < 10.0);
    }

    #[test]
    fn no_worse_than_chance_and_no_better_than_sequential_on_noise() {
        // A data-dependent branch pattern: the single-access predictor sees
        // each trace's branches without intermediate outcomes and should do
        // no better than the sequential model.
        let src = "
main:   li   s0, 2000
        li   s1, 12345
loop:   mul  s1, s1, s0
        addi s1, s1, 17
        srl  t0, s1, 3
        andi t0, t0, 1
        beqz t0, skip
        addi s2, s2, 1
skip:   addi s0, s0, -1
        bnez s0, loop
        halt
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut mb = TraceGshare::new(14);
        let mut seq = SequentialTracePredictor::paper();
        run_traces(&mut m, 1_000_000, TraceConfig::default(), |t| {
            mb.observe(t);
            seq.observe(t);
        })
        .unwrap();
        let mb_rate = mb.stats().trace_mispredict_pct();
        let seq_rate = seq.stats().trace_mispredict_pct();
        assert!(
            mb_rate + 1.0 >= seq_rate,
            "single-access prediction should not beat sequential: {mb_rate} vs {seq_rate}"
        );
    }
}

/// A multiported GAg multiple-branch predictor (Yeh, Marr & Patt, ICS'93;
/// used by Rotenberg et al.'s original trace-cache study): the global
/// branch history register alone indexes a PHT whose entries hold six
/// two-bit counters, so all of a trace's branches are predicted in one
/// access. Unlike [`TraceGshare`] the fetch address does not participate,
/// which costs accuracy through interference — the effect Patel's
/// predictor (and ultimately next-trace prediction) addressed.
#[derive(Clone, Debug)]
pub struct MultiGAg {
    pht: Vec<[u8; MAX_TRACE_BRANCHES]>,
    bhr: u32,
    hist_bits: u32,
    itb: IndirectTargetBuffer,
    ras: ReturnAddressStack,
    stats: MultiBranchStats,
}

impl MultiGAg {
    /// Creates a predictor with `hist_bits` of global history and
    /// `2^hist_bits` PHT entries of six counters each.
    ///
    /// # Panics
    ///
    /// Panics if `hist_bits` is 0 or greater than 24.
    pub fn new(hist_bits: u32) -> MultiGAg {
        assert!((1..=24).contains(&hist_bits));
        MultiGAg {
            pht: vec![[1; MAX_TRACE_BRANCHES]; 1 << hist_bits],
            bhr: 0,
            hist_bits,
            itb: IndirectTargetBuffer::paper(),
            ras: ReturnAddressStack::perfect(),
            stats: MultiBranchStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MultiBranchStats {
        &self.stats
    }

    /// Observes one completed trace (one PHT access for all its branches).
    pub fn observe(&mut self, trace: &Trace) {
        let idx = (self.bhr as usize) & (self.pht.len() - 1);
        let mut wrong = false;
        let mut branch_i = 0usize;
        for c in trace.controls() {
            match c.kind {
                ControlKind::CondBranch => {
                    self.stats.branches += 1;
                    if (self.pht[idx][branch_i] >= 2) != c.taken {
                        self.stats.branch_mispredicts += 1;
                        wrong = true;
                    }
                    branch_i += 1;
                }
                ControlKind::Call => self.ras.push(c.pc.wrapping_add(4)),
                ControlKind::IndirectJump | ControlKind::IndirectCall => {
                    if self.itb.predict(c.pc) != c.target {
                        wrong = true;
                    }
                    self.itb.update(c.pc, c.target);
                    if c.kind == ControlKind::IndirectCall {
                        self.ras.push(c.pc.wrapping_add(4));
                    }
                }
                ControlKind::Return => {
                    let _ = self.ras.pop();
                }
                ControlKind::Jump | ControlKind::None => {}
            }
        }
        for (branch_i, c) in trace.cond_branches().enumerate() {
            let ctr = &mut self.pht[idx][branch_i];
            if c.taken {
                *ctr = (*ctr + 1).min(3);
            } else {
                *ctr = ctr.saturating_sub(1);
            }
            self.bhr = ((self.bhr << 1) | c.taken as u32) & ((1 << self.hist_bits) - 1);
        }
        self.stats.traces += 1;
        if wrong {
            self.stats.trace_mispredicts += 1;
        }
    }
}

#[cfg(test)]
mod gag_tests {
    use super::*;
    use ntp_isa::asm::assemble;
    use ntp_sim::Machine;
    use ntp_trace::{run_traces, TraceConfig};

    #[test]
    fn gag_learns_biased_loops() {
        let src = "
main:   li   t0, 4000
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut g = MultiGAg::new(14);
        run_traces(&mut m, 100_000, TraceConfig::default(), |t| g.observe(t)).unwrap();
        assert!(g.stats().trace_mispredict_pct() < 10.0);
    }

    #[test]
    fn pc_indexing_beats_pure_history_under_interference() {
        // Two distinct loops with identical outcome histories but opposite
        // per-slot biases confound GAg more than the PC-hashed TraceGshare.
        let src = "
main:   li   s0, 800
outer:  li   t0, 3
la:     andi t1, s0, 3
        beqz t1, sa
        addi s1, s1, 1
sa:     addi t0, t0, -1
        bnez t0, la
        li   t0, 3
lb:     andi t1, s0, 1
        bnez t1, sb
        addi s1, s1, 2
sb:     addi t0, t0, -1
        bnez t0, lb
        addi s0, s0, -1
        bnez s0, outer
        halt
";
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut gag = MultiGAg::new(14);
        let mut gsh = TraceGshare::new(14);
        run_traces(&mut m, 1_000_000, TraceConfig::default(), |t| {
            gag.observe(t);
            gsh.observe(t);
        })
        .unwrap();
        assert!(
            gsh.stats().trace_mispredict_pct() <= gag.stats().trace_mispredict_pct() + 1.0,
            "gshare {} vs gag {}",
            gsh.stats().trace_mispredict_pct(),
            gag.stats().trace_mispredict_pct()
        );
    }
}
