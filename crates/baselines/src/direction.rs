//! Single-branch direction predictors: bimodal, GAg and gshare.

use crate::PatternHistoryTable;

/// A conditional-branch direction predictor.
pub trait DirectionPredictor {
    /// Predicted direction for the branch at `pc`.
    fn predict(&self, pc: u32) -> bool;

    /// Trains with the actual direction of the branch at `pc` (and shifts
    /// any global history).
    fn update(&mut self, pc: u32, taken: bool);

    /// Forgets all state.
    fn reset(&mut self);
}

/// The classic PC-indexed two-bit predictor (Smith, ISCA 1981).
#[derive(Clone, Debug)]
pub struct Bimodal {
    pht: PatternHistoryTable,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is out of range (see
    /// [`PatternHistoryTable::new`]).
    pub fn new(index_bits: u32) -> Bimodal {
        Bimodal {
            pht: PatternHistoryTable::new(index_bits),
        }
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u32) -> bool {
        self.pht.predict(pc >> 2)
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.pht.update(pc >> 2, taken);
    }

    fn reset(&mut self) {
        self.pht.reset();
    }
}

/// GAg (Yeh & Patt): a single global branch history register indexes the
/// PHT directly; the branch PC is ignored.
#[derive(Clone, Debug)]
pub struct GAg {
    pht: PatternHistoryTable,
    bhr: u32,
    hist_bits: u32,
}

impl GAg {
    /// Creates a GAg predictor with a `hist_bits`-deep history and a PHT of
    /// `2^hist_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `hist_bits` is out of range.
    pub fn new(hist_bits: u32) -> GAg {
        GAg {
            pht: PatternHistoryTable::new(hist_bits),
            bhr: 0,
            hist_bits,
        }
    }

    /// The current global history register value.
    pub fn history(&self) -> u32 {
        self.bhr
    }
}

impl DirectionPredictor for GAg {
    fn predict(&self, _pc: u32) -> bool {
        self.pht.predict(self.bhr)
    }

    fn update(&mut self, _pc: u32, taken: bool) {
        self.pht.update(self.bhr, taken);
        self.bhr = ((self.bhr << 1) | taken as u32) & ((1 << self.hist_bits) - 1);
    }

    fn reset(&mut self) {
        self.pht.reset();
        self.bhr = 0;
    }
}

/// GSHARE (McFarling): global history XORed with the branch PC indexes the
/// PHT. The paper's sequential baseline uses a 16-bit gshare.
#[derive(Clone, Debug)]
pub struct Gshare {
    pht: PatternHistoryTable,
    bhr: u32,
    hist_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `hist_bits` of history and a PHT of
    /// `2^hist_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `hist_bits` is out of range.
    pub fn new(hist_bits: u32) -> Gshare {
        Gshare {
            pht: PatternHistoryTable::new(hist_bits),
            bhr: 0,
            hist_bits,
        }
    }

    /// The paper's configuration: 16 history bits, 2^16 counters.
    pub fn paper() -> Gshare {
        Gshare::new(16)
    }

    fn index(&self, pc: u32) -> u32 {
        (pc >> 2) ^ self.bhr
    }

    /// The current global history register value.
    pub fn history(&self) -> u32 {
        self.bhr
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u32) -> bool {
        self.pht.predict(self.index(pc))
    }

    fn update(&mut self, pc: u32, taken: bool) {
        self.pht.update(self.index(pc), taken);
        self.bhr = ((self.bhr << 1) | taken as u32) & ((1 << self.hist_bits) - 1);
    }

    fn reset(&mut self) {
        self.pht.reset();
        self.bhr = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train<P: DirectionPredictor>(p: &mut P, seq: &[(u32, bool)], rounds: usize) -> u32 {
        let mut wrong = 0;
        for _ in 0..rounds {
            for &(pc, taken) in seq {
                if p.predict(pc) != taken {
                    wrong += 1;
                }
                p.update(pc, taken);
            }
        }
        wrong
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        let mut p = Bimodal::new(10);
        let wrong = train(&mut p, &[(0x100, true), (0x200, false)], 50);
        assert!(wrong <= 3, "only warm-up misses: {wrong}");
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Bimodal::new(10);
        let seq: Vec<(u32, bool)> = (0..100).map(|k| (0x100, k % 2 == 0)).collect();
        let wrong = train(&mut p, &seq, 1);
        assert!(wrong >= 40, "alternation defeats bimodal: {wrong}");
    }

    #[test]
    fn gshare_learns_alternation() {
        let mut p = Gshare::new(10);
        let seq: Vec<(u32, bool)> = (0..40).map(|k| (0x100, k % 2 == 0)).collect();
        // After warm-up, history disambiguates the alternation perfectly.
        train(&mut p, &seq, 1);
        let wrong = train(&mut p, &seq, 1);
        assert!(wrong <= 2, "gshare should track alternation: {wrong}");
    }

    #[test]
    fn gag_learns_global_patterns() {
        let mut p = GAg::new(8);
        // Branch B's outcome equals branch A's previous outcome.
        let seq = [(0x100, true), (0x200, true), (0x100, false), (0x200, false)];
        train(&mut p, &seq, 30);
        let wrong = train(&mut p, &seq, 5);
        assert!(wrong <= 2, "correlation captured: {wrong}");
    }

    #[test]
    fn gshare_history_shifts() {
        let mut p = Gshare::new(6);
        p.update(0, true);
        p.update(0, false);
        p.update(0, true);
        assert_eq!(p.history(), 0b101);
    }

    #[test]
    fn reset_clears_history() {
        let mut p = Gshare::new(6);
        p.update(0, true);
        p.reset();
        assert_eq!(p.history(), 0);
    }
}
