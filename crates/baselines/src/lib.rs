//! # ntp-baselines — the predictors the paper compares against
//!
//! * Single-branch direction predictors: [`Bimodal`], [`GAg`], [`Gshare`]
//!   (the paper's reference is a 16-bit gshare);
//! * target predictors: [`ReturnAddressStack`] and the correlated
//!   [`IndirectTargetBuffer`] of Chang, Hao & Patt;
//! * [`SequentialTracePredictor`] — the idealized sequential baseline of
//!   §5.1 that the paper's headline "~26% lower misprediction" is measured
//!   against;
//! * [`TraceGshare`] — a realizable single-access multiple-branch predictor
//!   (after Patel et al.), for context below the idealized baseline.
//!
//! # Example
//!
//! ```
//! use ntp_baselines::{DirectionPredictor, Gshare};
//! let mut g = Gshare::paper();
//! g.update(0x0040_0000, true);
//! let _ = g.predict(0x0040_0000);
//! ```

#![warn(missing_docs)]

mod combining;
mod direction;
mod multibranch;
mod pht;
mod sequential;
mod targets;
mod telemetry;

pub use combining::Combining;
pub use direction::{Bimodal, DirectionPredictor, GAg, Gshare};
pub use multibranch::{MultiBranchStats, MultiGAg, TraceGshare};
pub use pht::PatternHistoryTable;
pub use sequential::{SequentialConfig, SequentialStats, SequentialTracePredictor};
pub use targets::{IndirectTargetBuffer, ReturnAddressStack};
