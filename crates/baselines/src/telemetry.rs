//! Telemetry integration: [`ToJson`] for the baseline predictors' stats, so
//! Table-2 comparison columns serialize alongside the path-based results.

use crate::{MultiBranchStats, SequentialStats};
use ntp_telemetry::{Json, ToJson};

impl ToJson for SequentialStats {
    /// Raw counters plus the three Table-2 rates.
    fn to_json(&self) -> Json {
        Json::object()
            .with("traces", Json::U64(self.traces))
            .with("trace_mispredicts", Json::U64(self.trace_mispredicts))
            .with("branches", Json::U64(self.branches))
            .with("branch_mispredicts", Json::U64(self.branch_mispredicts))
            .with("indirects", Json::U64(self.indirects))
            .with("indirect_mispredicts", Json::U64(self.indirect_mispredicts))
            .with("returns", Json::U64(self.returns))
            .with("return_mispredicts", Json::U64(self.return_mispredicts))
            .with(
                "trace_mispredict_pct",
                Json::F64(self.trace_mispredict_pct()),
            )
            .with(
                "branch_mispredict_pct",
                Json::F64(self.branch_mispredict_pct()),
            )
            .with("branches_per_trace", Json::F64(self.branches_per_trace()))
    }
}

impl ToJson for MultiBranchStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("traces", Json::U64(self.traces))
            .with("trace_mispredicts", Json::U64(self.trace_mispredicts))
            .with("branches", Json::U64(self.branches))
            .with("branch_mispredicts", Json::U64(self.branch_mispredicts))
            .with(
                "trace_mispredict_pct",
                Json::F64(self.trace_mispredict_pct()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stats_serialize_rates() {
        let s = SequentialStats {
            traces: 200,
            trace_mispredicts: 30,
            branches: 900,
            branch_mispredicts: 45,
            indirects: 10,
            indirect_mispredicts: 2,
            returns: 50,
            return_mispredicts: 1,
        };
        let j = s.to_json();
        assert_eq!(j.get("traces").and_then(Json::as_u64), Some(200));
        assert!(
            (j.get("trace_mispredict_pct")
                .and_then(Json::as_f64)
                .unwrap()
                - 15.0)
                .abs()
                < 1e-12
        );
        assert!(
            (j.get("branch_mispredict_pct")
                .and_then(Json::as_f64)
                .unwrap()
                - 5.0)
                .abs()
                < 1e-12
        );
        assert!((j.get("branches_per_trace").and_then(Json::as_f64).unwrap() - 4.5).abs() < 1e-12);
        let parsed = ntp_telemetry::json::parse(&j.pretty()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn multibranch_stats_serialize() {
        let s = MultiBranchStats {
            traces: 100,
            trace_mispredicts: 25,
            branches: 400,
            branch_mispredicts: 40,
        };
        let j = s.to_json();
        assert_eq!(j.get("branch_mispredicts").and_then(Json::as_u64), Some(40));
        assert!(
            (j.get("trace_mispredict_pct")
                .and_then(Json::as_f64)
                .unwrap()
                - 25.0)
                .abs()
                < 1e-12
        );
    }
}
