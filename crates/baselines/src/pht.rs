//! Pattern history tables of two-bit saturating counters.

/// A table of classic two-bit saturating counters (predict taken at 2 or 3).
#[derive(Clone, Debug)]
pub struct PatternHistoryTable {
    counters: Vec<u8>,
    index_bits: u32,
}

impl PatternHistoryTable {
    /// Creates a table with `2^index_bits` counters, initialized to weakly
    /// not-taken (1).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> PatternHistoryTable {
        assert!((1..=28).contains(&index_bits), "index bits must be 1..=28");
        PatternHistoryTable {
            counters: vec![1; 1 << index_bits],
            index_bits,
        }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Always false — tables are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index width in bits.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    fn slot(&self, index: u32) -> usize {
        (index as usize) & (self.counters.len() - 1)
    }

    /// Predicted direction for `index`.
    pub fn predict(&self, index: u32) -> bool {
        self.counters[self.slot(index)] >= 2
    }

    /// Trains the counter at `index` with the actual direction.
    pub fn update(&mut self, index: u32, taken: bool) {
        let slot = (index as usize) & (self.counters.len() - 1);
        let c = &mut self.counters[slot];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Resets all counters to weakly not-taken.
    pub fn reset(&mut self) {
        self.counters.fill(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_learn_direction() {
        let mut pht = PatternHistoryTable::new(4);
        assert!(!pht.predict(3), "weakly not-taken initially");
        pht.update(3, true);
        assert!(pht.predict(3));
        pht.update(3, true);
        pht.update(3, false);
        assert!(pht.predict(3), "hysteresis keeps taken after one miss");
        pht.update(3, false);
        pht.update(3, false);
        assert!(!pht.predict(3));
    }

    #[test]
    fn index_wraps() {
        let mut pht = PatternHistoryTable::new(4);
        pht.update(0x10, true); // aliases slot 0
        pht.update(0x10, true);
        assert!(pht.predict(0));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut pht = PatternHistoryTable::new(4);
        pht.update(1, true);
        pht.update(1, true);
        pht.reset();
        assert!(!pht.predict(1));
    }
}
