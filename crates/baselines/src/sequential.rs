//! The idealized sequential trace predictor of §5.1.
//!
//! This is the reference point the paper measures against: proven
//! single-branch components predicting each control instruction of a trace
//! *sequentially*, with the outcomes of all previous branches known — a
//! 16-bit gshare for directions, a perfect BTB for direct targets, a
//! 4K-entry correlated target buffer for indirect jumps/calls, and a perfect
//! return address predictor. It is not realizable (it would need several
//! predictor accesses per cycle); it upper-bounds multiple-branch
//! predictors.
//!
//! A trace counts as mispredicted if *any* prediction inside it was wrong.

use crate::{DirectionPredictor, Gshare, IndirectTargetBuffer, ReturnAddressStack};
use ntp_isa::ControlKind;
use ntp_trace::Trace;

/// Configuration of the sequential baseline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SequentialConfig {
    /// gshare history bits / log2 PHT entries (paper: 16).
    pub gshare_bits: u32,
    /// log2 entries of the correlated indirect-target buffer (paper: 12).
    pub itb_bits: u32,
    /// Use a perfect return-address predictor (paper: yes). When false a
    /// bounded RAS of depth `ras_depth` is used.
    pub perfect_ras: bool,
    /// RAS depth when `perfect_ras` is false.
    pub ras_depth: usize,
}

impl Default for SequentialConfig {
    fn default() -> SequentialConfig {
        SequentialConfig {
            gshare_bits: 16,
            itb_bits: 12,
            perfect_ras: true,
            ras_depth: 16,
        }
    }
}

/// Accuracy statistics of the sequential baseline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SequentialStats {
    /// Traces observed.
    pub traces: u64,
    /// Traces with at least one wrong prediction inside.
    pub trace_mispredicts: u64,
    /// Conditional branches observed.
    pub branches: u64,
    /// Conditional branches gshare got wrong.
    pub branch_mispredicts: u64,
    /// Indirect jumps/calls observed (excluding returns).
    pub indirects: u64,
    /// Indirect targets the buffer got wrong.
    pub indirect_mispredicts: u64,
    /// Returns observed.
    pub returns: u64,
    /// Returns the (non-perfect) RAS got wrong.
    pub return_mispredicts: u64,
}

impl SequentialStats {
    /// Trace misprediction rate in percent.
    pub fn trace_mispredict_pct(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            100.0 * self.trace_mispredicts as f64 / self.traces as f64
        }
    }

    /// gshare branch misprediction rate in percent (Table 2, column 1).
    pub fn branch_mispredict_pct(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            100.0 * self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Mean conditional branches per trace (Table 2, column 2).
    pub fn branches_per_trace(&self) -> f64 {
        if self.traces == 0 {
            0.0
        } else {
            self.branches as f64 / self.traces as f64
        }
    }
}

/// The idealized sequential trace predictor.
///
/// # Examples
///
/// ```
/// use ntp_baselines::SequentialTracePredictor;
/// let p = SequentialTracePredictor::paper();
/// assert_eq!(p.stats().traces, 0);
/// ```
#[derive(Clone, Debug)]
pub struct SequentialTracePredictor {
    gshare: Gshare,
    itb: IndirectTargetBuffer,
    ras: ReturnAddressStack,
    perfect_ras: bool,
    stats: SequentialStats,
}

impl SequentialTracePredictor {
    /// Builds the baseline with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range table sizes.
    pub fn new(cfg: SequentialConfig) -> SequentialTracePredictor {
        SequentialTracePredictor {
            gshare: Gshare::new(cfg.gshare_bits),
            itb: IndirectTargetBuffer::new(cfg.itb_bits),
            ras: if cfg.perfect_ras {
                ReturnAddressStack::perfect()
            } else {
                ReturnAddressStack::bounded(cfg.ras_depth)
            },
            perfect_ras: cfg.perfect_ras,
            stats: SequentialStats::default(),
        }
    }

    /// The paper's configuration (16-bit gshare, 4K-entry ITB, perfect RAS).
    pub fn paper() -> SequentialTracePredictor {
        SequentialTracePredictor::new(SequentialConfig::default())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SequentialStats {
        &self.stats
    }

    /// Observes one completed trace: sequentially predicts and trains on
    /// every control instruction inside it.
    pub fn observe(&mut self, trace: &Trace) {
        let mut wrong = false;
        for c in trace.controls() {
            match c.kind {
                ControlKind::CondBranch => {
                    self.stats.branches += 1;
                    let pred = self.gshare.predict(c.pc);
                    if pred != c.taken {
                        self.stats.branch_mispredicts += 1;
                        wrong = true;
                    }
                    self.gshare.update(c.pc, c.taken);
                }
                ControlKind::Jump => {
                    // Perfect BTB: direct targets never miss.
                }
                ControlKind::Call => {
                    self.ras.push(c.pc.wrapping_add(4));
                }
                ControlKind::IndirectJump | ControlKind::IndirectCall => {
                    self.stats.indirects += 1;
                    if self.itb.predict(c.pc) != c.target {
                        self.stats.indirect_mispredicts += 1;
                        wrong = true;
                    }
                    self.itb.update(c.pc, c.target);
                    if c.kind == ControlKind::IndirectCall {
                        self.ras.push(c.pc.wrapping_add(4));
                    }
                }
                ControlKind::Return => {
                    self.stats.returns += 1;
                    let popped = self.ras.pop();
                    if !self.perfect_ras && popped != Some(c.target) {
                        self.stats.return_mispredicts += 1;
                        wrong = true;
                    }
                }
                ControlKind::None => {}
            }
        }
        self.stats.traces += 1;
        if wrong {
            self.stats.trace_mispredicts += 1;
        }
    }

    /// Forgets all predictor state (statistics are kept).
    pub fn reset_predictors(&mut self) {
        self.gshare.reset();
        self.itb.reset();
        self.ras.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntp_isa::asm::assemble;
    use ntp_sim::Machine;
    use ntp_trace::{run_traces, TraceConfig};

    fn observe_program(src: &str, budget: u64) -> SequentialStats {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(p);
        let mut seq = SequentialTracePredictor::paper();
        run_traces(&mut m, budget, TraceConfig::default(), |t| seq.observe(t)).unwrap();
        seq.stats().clone()
    }

    #[test]
    fn biased_loop_is_nearly_perfect() {
        let stats = observe_program(
            "
main:   li   t0, 4000
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
",
            100_000,
        );
        assert_eq!(stats.branches, 4000);
        assert!(
            stats.branch_mispredict_pct() < 2.0,
            "{}",
            stats.branch_mispredict_pct()
        );
        assert!(stats.trace_mispredict_pct() < 10.0);
    }

    #[test]
    fn returns_are_free_with_perfect_ras() {
        let stats = observe_program(
            "
main:   li   s0, 100
loop:   jal  f
        addi s0, s0, -1
        bnez s0, loop
        halt
f:      ret
",
            100_000,
        );
        assert_eq!(stats.returns, 100);
        assert_eq!(stats.return_mispredicts, 0);
    }

    #[test]
    fn alternating_indirect_targets_learned_by_correlation() {
        let stats = observe_program(
            "
main:   li   s0, 200
        la   s1, table
loop:   andi t0, s0, 1
        sll  t1, t0, 2
        add  t2, s1, t1
        lw   t3, 0(t2)
        jr   t3
case0:  addi s0, s0, -1
        bnez s0, loop
        halt
case1:  addi s0, s0, -1
        bnez s0, loop
        halt
        .data
table:  .word case0, case1
",
            100_000,
        );
        assert!(stats.indirects >= 199);
        // The correlated buffer disambiguates a strict alternation.
        assert!(
            (stats.indirect_mispredicts as f64) < 0.2 * stats.indirects as f64,
            "{} of {}",
            stats.indirect_mispredicts,
            stats.indirects
        );
    }

    #[test]
    fn clustered_mispredictions_count_once_per_trace() {
        let mut stats = SequentialStats {
            traces: 10,
            trace_mispredicts: 2,
            branches: 40,
            branch_mispredicts: 6,
            ..SequentialStats::default()
        };
        assert!((stats.trace_mispredict_pct() - 20.0).abs() < 1e-9);
        assert!((stats.branch_mispredict_pct() - 15.0).abs() < 1e-9);
        stats.traces = 0;
        stats.branches = 0;
        assert_eq!(stats.trace_mispredict_pct(), 0.0);
        assert_eq!(stats.branches_per_trace(), 0.0);
    }
}
