//! Qualitative claims of the paper, asserted as tests at tiny scale.
//!
//! These check *shape*, not absolute rates: who wins, and in which
//! direction each mechanism moves accuracy.

use ntp::core::{
    evaluate, NextTracePredictor, PredictorConfig, PredictorStats, UnboundedConfig,
    UnboundedPredictor,
};
use ntp::trace::{run_traces, TraceConfig, TraceRecord};
use ntp::workloads::{suite, ScalePreset, Workload};

fn records_of(w: &Workload) -> Vec<TraceRecord> {
    let mut m = w.machine();
    let mut records = Vec::new();
    run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
    })
    .unwrap();
    records
}

fn mean<F: FnMut(&[TraceRecord]) -> PredictorStats>(mut f: F) -> f64 {
    let suite = suite(ScalePreset::Tiny);
    let mut total = 0.0;
    for w in &suite {
        total += f(&records_of(w)).mispredict_pct();
    }
    total / suite.len() as f64
}

#[test]
fn hybrid_improves_on_correlated_alone_unbounded() {
    // §5.2: "For all benchmarks, the hybrid predictor has a higher
    // prediction accuracy than using the correlated predictor alone."
    // (We assert it for the suite mean.)
    let corr = mean(|r| {
        let mut p = UnboundedPredictor::new(UnboundedConfig::correlated_only(5));
        evaluate(&mut p, r)
    });
    let hybrid = mean(|r| {
        let mut p = UnboundedPredictor::new(UnboundedConfig::hybrid_no_rhs(5));
        evaluate(&mut p, r)
    });
    assert!(hybrid <= corr, "hybrid {hybrid} vs correlated {corr}");
}

#[test]
fn deeper_history_helps_at_large_tables() {
    // §5.2/§5.3: misprediction falls with history depth when capacity is
    // ample.
    let d0 = mean(|r| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(18, 0));
        evaluate(&mut p, r)
    });
    let d7 = mean(|r| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(18, 7));
        evaluate(&mut p, r)
    });
    assert!(d7 < d0, "depth 7 {d7} vs depth 0 {d0}");
}

#[test]
fn bigger_tables_do_not_hurt() {
    // §5.3: at fixed depth, mean misprediction is ordered by table size.
    let m12 = mean(|r| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(12, 7));
        evaluate(&mut p, r)
    });
    let m15 = mean(|r| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
        evaluate(&mut p, r)
    });
    let m18 = mean(|r| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(18, 7));
        evaluate(&mut p, r)
    });
    assert!(m15 <= m12 + 0.2, "{m15} vs {m12}");
    assert!(m18 <= m15 + 0.2, "{m18} vs {m15}");
}

#[test]
fn rhs_helps_the_recursive_parser() {
    // §5.2: the RHS most helps call-heavy code whose post-return flow
    // correlates with the pre-call path (gcc in the paper; cc here).
    let w = ntp::workloads::by_name("cc", ScalePreset::Tiny);
    let records = records_of(&w);
    let mut with = UnboundedPredictor::new(UnboundedConfig::paper(5));
    let with_stats = evaluate(&mut with, &records);
    let mut without = UnboundedPredictor::new(UnboundedConfig::hybrid_no_rhs(5));
    let without_stats = evaluate(&mut without, &records);
    assert!(
        with_stats.mispredict_pct() < without_stats.mispredict_pct(),
        "RHS {} vs no-RHS {}",
        with_stats.mispredict_pct(),
        without_stats.mispredict_pct()
    );
}

#[test]
fn alternate_prediction_rescues_mispredictions() {
    // §6: a large share of primary misses are caught by the alternate.
    let w = ntp::workloads::by_name("compress", ScalePreset::Tiny);
    let records = records_of(&w);
    let mut p = NextTracePredictor::new(PredictorConfig::paper_with_alternate(15, 2));
    let stats = evaluate(&mut p, &records);
    assert!(stats.both_mispredict_pct() < stats.mispredict_pct());
    assert!(
        stats.alternate_rescue_fraction() > 0.2,
        "rescue fraction {}",
        stats.alternate_rescue_fraction()
    );
}

#[test]
fn cost_reduced_predictor_is_nearly_free() {
    // §5.5: storing the hashed index instead of the full identifier should
    // not change accuracy significantly.
    let w = ntp::workloads::by_name("go", ScalePreset::Tiny);
    let records = records_of(&w);
    let full_cfg = PredictorConfig::paper(15, 7);
    let mut full = NextTracePredictor::new(full_cfg);
    let fs = evaluate(&mut full, &records);
    let mut hashed = NextTracePredictor::new(PredictorConfig {
        stored_target: ntp::core::StoredTarget::Hashed,
        ..full_cfg
    });
    let hs = evaluate(&mut hashed, &records);
    assert!(
        (fs.mispredict_pct() - hs.mispredict_pct()).abs() < 1.0,
        "full {} vs hashed {}",
        fs.mispredict_pct(),
        hs.mispredict_pct()
    );
}

#[test]
fn mispredictions_cluster_within_traces() {
    // §5.1: the sequential baseline's trace misprediction rate is lower
    // than branches-per-trace times the branch misprediction rate.
    use ntp::baselines::SequentialTracePredictor;
    let w = ntp::workloads::by_name("go", ScalePreset::Tiny);
    let mut m = w.machine();
    let mut seq = SequentialTracePredictor::paper();
    run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
        seq.observe(t)
    })
    .unwrap();
    let s = seq.stats();
    let independent_bound = s.branches_per_trace() * s.branch_mispredict_pct();
    assert!(
        s.trace_mispredict_pct() < independent_bound,
        "clustering: {} vs {}",
        s.trace_mispredict_pct(),
        independent_bound
    );
}

#[test]
fn huge_bounded_table_approaches_unbounded() {
    // Cross-validation of the two predictor implementations: with a 2^18
    // table, full 16-bit tags and a small trace working set, the bounded
    // hybrid should behave like the unbounded model at the same depth
    // (differences come only from DOLC folding and the finite secondary).
    let w = ntp::workloads::by_name("compress", ScalePreset::Tiny);
    let records = records_of(&w);
    let mut bounded = NextTracePredictor::new(PredictorConfig {
        tag_bits: 16,
        ..PredictorConfig::paper(18, 3)
    });
    let b = evaluate(&mut bounded, &records);
    let mut unbounded = UnboundedPredictor::new(UnboundedConfig::paper(3));
    let u = evaluate(&mut unbounded, &records);
    let diff = (b.mispredict_pct() - u.mispredict_pct()).abs();
    assert!(
        diff < 3.0,
        "bounded {} vs unbounded {} (diff {diff})",
        b.mispredict_pct(),
        u.mispredict_pct()
    );
}

#[test]
fn sequential_baseline_is_not_a_strawman() {
    // The idealized sequential predictor must beat the realizable
    // single-access multiple-branch predictors on the branchiest
    // benchmark, or our "26% better than sequential" claim is hollow.
    use ntp::baselines::{MultiGAg, SequentialTracePredictor};
    let w = ntp::workloads::by_name("cc", ScalePreset::Tiny);
    let mut m = w.machine();
    let mut seq = SequentialTracePredictor::paper();
    let mut gag = MultiGAg::new(14);
    run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
        seq.observe(t);
        gag.observe(t);
    })
    .unwrap();
    assert!(
        seq.stats().trace_mispredict_pct() <= gag.stats().trace_mispredict_pct() + 0.5,
        "sequential {} vs multiported GAg {}",
        seq.stats().trace_mispredict_pct(),
        gag.stats().trace_mispredict_pct()
    );
}
