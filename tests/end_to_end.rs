//! End-to-end pipeline tests: workload → simulation → trace selection →
//! predictors, checking the cross-crate contracts hold on real streams.

use ntp::baselines::SequentialTracePredictor;
use ntp::core::{
    evaluate, NextTracePredictor, PredictorConfig, UnboundedConfig, UnboundedPredictor,
};
use ntp::engine::{DelayedUpdateEngine, EngineConfig, FetchConfig, FetchEngine};
use ntp::trace::{
    run_traces, TraceConfig, TraceRecord, TraceStats, MAX_TRACE_BRANCHES, MAX_TRACE_LEN,
};
use ntp::workloads::{suite, ScalePreset};

fn capture(name: &str) -> (Vec<TraceRecord>, TraceStats) {
    let w = ntp::workloads::by_name(name, ScalePreset::Tiny);
    let mut m = w.machine();
    let mut records = Vec::new();
    let mut stats = TraceStats::new();
    run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
        stats.record(t);
    })
    .unwrap();
    assert!(m.halted(), "tiny workloads run to completion");
    (records, stats)
}

#[test]
fn every_workload_yields_wellformed_traces() {
    for w in suite(ScalePreset::Tiny) {
        let mut m = w.machine();
        let mut instrs = 0u64;
        let mut traces = 0u64;
        run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
            traces += 1;
            instrs += t.len() as u64;
            assert!(!t.is_empty() && t.len() <= MAX_TRACE_LEN, "{}", w.name);
            assert!(t.branch_count() <= MAX_TRACE_BRANCHES);
            assert!(t.id().start_pc >= 0x0040_0000);
            // Indirect-target instructions may only appear at the end.
            let controls = t.controls();
            for c in &controls[..controls.len().saturating_sub(1)] {
                assert!(!c.kind.is_indirect(), "{}: indirect inside trace", w.name);
            }
        })
        .unwrap();
        assert_eq!(instrs, m.icount(), "{}: traces cover the stream", w.name);
        assert!(traces > 100, "{}", w.name);
    }
}

#[test]
fn deterministic_trace_selection_implies_unique_contents() {
    // The same trace id must always denote the same instruction sequence.
    use std::collections::HashMap;
    for w in suite(ScalePreset::Tiny) {
        let mut m = w.machine();
        let mut seen: HashMap<u64, (usize, u32)> = HashMap::new();
        let mut collisions = 0usize;
        run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
            let key = t.id().packed();
            let val = (t.len(), t.last_pc());
            if let Some(prev) = seen.insert(key, val) {
                if prev != val {
                    collisions += 1;
                }
            }
        })
        .unwrap();
        // Only the final flushed partial trace may reuse an id with
        // different contents.
        assert!(collisions <= 1, "{}: {collisions} id collisions", w.name);
    }
}

#[test]
fn predictors_learn_every_tiny_workload_better_than_cold() {
    for w in suite(ScalePreset::Tiny) {
        let mut m = w.machine();
        let mut records = Vec::new();
        run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
            records.push(TraceRecord::from(t));
        })
        .unwrap();
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
        let stats = evaluate(&mut p, &records);
        assert_eq!(stats.predictions, records.len() as u64);
        assert!(
            stats.mispredict_pct() < 60.0,
            "{}: {}",
            w.name,
            stats.mispredict_pct()
        );
        assert!(stats.correct > 0);
    }
}

#[test]
fn unbounded_beats_small_bounded_table_on_cc() {
    let (records, _) = capture("cc");
    let mut small = NextTracePredictor::new(PredictorConfig::paper(12, 7));
    let small_stats = evaluate(&mut small, &records);
    let mut unbounded = UnboundedPredictor::new(UnboundedConfig::paper(7));
    let unbounded_stats = evaluate(&mut unbounded, &records);
    assert!(
        unbounded_stats.mispredict_pct() <= small_stats.mispredict_pct() + 0.5,
        "unbounded {} vs 2^12 {}",
        unbounded_stats.mispredict_pct(),
        small_stats.mispredict_pct()
    );
}

#[test]
fn m88ksim_traces_end_at_dispatch_jumps() {
    let (_, stats) = capture("m88ksim");
    // The interpreter dispatches through an indirect jump per guest
    // instruction, so most traces must end in an indirect transfer.
    let frac = stats.indirect_endings() as f64 / stats.traces() as f64;
    assert!(frac > 0.5, "indirect-ending fraction {frac}");
}

#[test]
fn xlisp_exercises_calls_and_returns() {
    let (_, stats) = capture("xlisp");
    assert!(stats.calls() > 1000);
    assert!(stats.returns() > 1000);
}

#[test]
fn delayed_updates_cost_little_on_real_workload() {
    let (records, _) = capture("compress");
    let cfg = PredictorConfig::paper(15, 7);
    let mut ideal = NextTracePredictor::new(cfg);
    let ideal_stats = evaluate(&mut ideal, &records);
    let mut engine =
        DelayedUpdateEngine::new(NextTracePredictor::new(cfg), EngineConfig::default());
    let real = engine.run(&records);
    let delta = real.prediction.mispredict_pct() - ideal_stats.mispredict_pct();
    assert!(
        delta.abs() < 3.0,
        "delayed updates should be a small effect: {delta}"
    );
    assert!(real.ipc() > 1.0);
}

#[test]
fn fetch_engine_delivers_on_real_workload() {
    let (records, _) = capture("jpeg");
    let mut fe = FetchEngine::new(
        NextTracePredictor::new(PredictorConfig::paper(15, 7)),
        FetchConfig::default(),
    );
    let stats = fe.run(&records);
    assert!(
        stats.fetch_bandwidth() > 4.0,
        "bandwidth {}",
        stats.fetch_bandwidth()
    );
}

#[test]
fn sequential_baseline_consistent_with_trace_stats() {
    for w in suite(ScalePreset::Tiny) {
        let mut m = w.machine();
        let mut seq = SequentialTracePredictor::paper();
        let mut stats = TraceStats::new();
        run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
            seq.observe(t);
            stats.record(t);
        })
        .unwrap();
        assert_eq!(seq.stats().traces, stats.traces(), "{}", w.name);
        assert_eq!(seq.stats().branches, stats.cond_branches(), "{}", w.name);
        assert!(seq.stats().trace_mispredicts <= seq.stats().traces);
    }
}

#[test]
fn prediction_source_counts_are_conserved() {
    let (records, _) = capture("go");
    let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 5));
    let stats = evaluate(&mut p, &records);
    assert_eq!(
        stats.predictions,
        stats.from_correlated + stats.from_secondary + stats.cold,
        "every prediction has exactly one source"
    );
    assert!(stats.correlated_correct <= stats.from_correlated);
    assert!(stats.secondary_correct <= stats.from_secondary);
    assert_eq!(
        stats.correct,
        stats.correlated_correct + stats.secondary_correct,
        "cold predictions are never correct"
    );
}

#[test]
fn unbounded_alternate_rescues_like_bounded() {
    use ntp::core::UnboundedConfig;
    let (records, _) = capture("compress");
    let mut p = UnboundedPredictor::new(UnboundedConfig {
        alternate: true,
        ..UnboundedConfig::paper(2)
    });
    let stats = evaluate(&mut p, &records);
    assert!(stats.alternate_correct > 0, "alternate catches some misses");
    assert!(stats.both_mispredict_pct() < stats.mispredict_pct());
}

#[test]
fn confidence_estimation_on_real_workload() {
    use ntp::core::{evaluate_with_confidence, ConfidenceConfig, ConfidenceEstimator};
    let (records, _) = capture("m88ksim");
    let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
    let mut est = ConfidenceEstimator::new(ConfidenceConfig {
        threshold: 8,
        ..ConfidenceConfig::paper_like()
    });
    let stats = evaluate_with_confidence(&mut p, &mut est, &records);
    assert!(
        stats.high_mispredict_pct() < stats.low_mispredict_pct(),
        "high {} vs low {}",
        stats.high_mispredict_pct(),
        stats.low_mispredict_pct()
    );
    assert_eq!(
        stats.high_correct + stats.high_wrong + stats.low_correct + stats.low_wrong,
        records.len() as u64
    );
}

#[test]
fn trace_processor_scales_on_real_workload() {
    use ntp::engine::{TraceProcessor, TraceProcessorConfig};
    let (records, _) = capture("jpeg");
    let run = |pes: usize| {
        let mut tp = TraceProcessor::new(
            NextTracePredictor::new(PredictorConfig::paper(15, 7)),
            TraceProcessorConfig {
                pe_count: pes,
                ..TraceProcessorConfig::default()
            },
        );
        tp.run(&records).ipc()
    };
    let one = run(1);
    let four = run(4);
    assert!(four > one, "more PEs help: {four} vs {one}");
}
