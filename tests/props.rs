//! Property-based tests (proptest) over the core data structures and
//! invariants of the stack.

// Compiled only with `--features proptest`: the proptest dev-dependency
// is gated so the offline tier-1 build resolves without a registry.
#![cfg(feature = "proptest")]

use ntp::core::{Counter, CounterSpec, Dolc, PathHistory, ReturnHistoryStack, RhsConfig};
use ntp::isa::{decode, encode, ControlKind, Instr, Reg};
use ntp::sim::{ControlEvent, Step};
use ntp::trace::{HashedId, TraceBuilder, TraceConfig, TraceId};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = arb_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Add(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Sub(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Sltu(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| Instr::Mul(a, b, c)),
        (r(), r(), 0u8..32).prop_map(|(a, b, s)| Instr::Sll(a, b, s)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Addi(a, b, i)),
        (r(), r(), any::<u16>()).prop_map(|(a, b, i)| Instr::Ori(a, b, i)),
        (r(), any::<u16>()).prop_map(|(a, i)| Instr::Lui(a, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Lw(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Sb(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Beq(a, b, i)),
        (r(), r(), any::<i16>()).prop_map(|(a, b, i)| Instr::Bgeu(a, b, i)),
        (0u32..(1 << 26)).prop_map(Instr::J),
        (0u32..(1 << 26)).prop_map(Instr::Jal),
        r().prop_map(Instr::Jr),
        (r(), r()).prop_map(|(a, b)| Instr::Jalr(a, b)),
        Just(Instr::Halt),
        r().prop_map(Instr::Out),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let word = encode(&instr);
        prop_assert_eq!(decode(word), Ok(instr));
    }

    #[test]
    fn trace_id_packing_roundtrip(
        pc in (0x0040_0000u32..0x0080_0000).prop_map(|p| p & !3),
        bits in 0u8..64,
        count in 0u8..=6,
    ) {
        let id = TraceId::new(pc, bits, count);
        let back = TraceId::from_packed(id.packed());
        prop_assert_eq!(back.start_pc, id.start_pc);
        prop_assert_eq!(back.branch_bits, id.branch_bits);
        // Hash low two bits are the first two outcomes.
        prop_assert_eq!(id.hashed().0 & 0b11, (id.branch_bits & 0b11) as u16);
    }

    #[test]
    fn dolc_index_always_fits(
        ids in prop::collection::vec(any::<u16>(), 0..8),
        depth in 0usize..=7,
        bits_sel in 0usize..3,
    ) {
        let bits = [12u32, 15, 18][bits_sel];
        let dolc = Dolc::standard(depth, bits);
        let mut h: PathHistory<HashedId> = PathHistory::new(8);
        for v in ids {
            h.push(HashedId(v));
        }
        prop_assert!(dolc.index(&h, bits) < (1u32 << bits));
    }

    #[test]
    fn dolc_ignores_history_beyond_depth(
        ids in prop::collection::vec(any::<u16>(), 8),
        depth in 0usize..=6,
        tweak in any::<u16>(),
    ) {
        let dolc = Dolc::standard(depth, 15);
        let mut a: PathHistory<HashedId> = PathHistory::new(8);
        let mut b: PathHistory<HashedId> = PathHistory::new(8);
        for (k, v) in ids.iter().enumerate() {
            a.push(HashedId(*v));
            // Change only entries older than the depth window.
            let altered = if k < 8 - (depth + 1) { v ^ tweak } else { *v };
            b.push(HashedId(altered));
        }
        prop_assert_eq!(dolc.index(&a, 15), dolc.index(&b, 15));
    }

    #[test]
    fn counter_never_leaves_range(
        events in prop::collection::vec(any::<bool>(), 0..200),
        bits in 1u8..=4,
        inc in 1u8..=3,
        dec in 1u8..=15,
    ) {
        let spec = CounterSpec { bits, inc, dec };
        let mut c = Counter::new();
        for correct in events {
            if correct {
                c.on_correct(spec);
            } else {
                let _ = c.on_incorrect(spec);
            }
            prop_assert!(c.value() <= spec.max());
        }
    }

    #[test]
    fn path_history_matches_model(
        ops in prop::collection::vec(any::<u16>(), 0..64),
        cap in 1usize..=8,
    ) {
        let mut h: PathHistory<u16> = PathHistory::new(cap);
        let mut model: Vec<u16> = Vec::new();
        for v in ops {
            h.push(v);
            model.insert(0, v);
            model.truncate(cap);
            prop_assert_eq!(h.snapshot(), model.clone());
            prop_assert_eq!(h.newest().unwrap(), model[0]);
        }
    }

    #[test]
    fn rhs_depth_bounded(
        events in prop::collection::vec((0u8..3, any::<bool>()), 0..100),
        max_depth in 1usize..=8,
    ) {
        let mut h: PathHistory<u16> = PathHistory::new(4);
        h.push(1);
        let mut rhs: ReturnHistoryStack<u16> =
            ReturnHistoryStack::new(RhsConfig { max_depth });
        for (calls, ret) in events {
            rhs.on_trace(&mut h, calls, ret);
            prop_assert!(rhs.depth() <= max_depth);
            prop_assert!(h.len() <= h.capacity());
        }
    }
}

/// Builds a synthetic retired-instruction step.
fn step(pc: u32, kind: ControlKind, taken: bool) -> Step {
    let instr = match kind {
        ControlKind::None => Instr::Add(Reg::ZERO, Reg::ZERO, Reg::ZERO),
        ControlKind::CondBranch => Instr::Beq(Reg::ZERO, Reg::ZERO, 1),
        ControlKind::Jump => Instr::J(pc >> 2),
        ControlKind::Call => Instr::Jal(pc >> 2),
        ControlKind::IndirectJump => Instr::Jr(Reg::V0),
        ControlKind::IndirectCall => Instr::Jalr(Reg::RA, Reg::V0),
        ControlKind::Return => Instr::Jr(Reg::RA),
    };
    let control = (kind != ControlKind::None).then_some(ControlEvent {
        kind,
        taken: taken || kind != ControlKind::CondBranch,
        target: pc.wrapping_add(64),
    });
    Step { pc, instr, control }
}

fn arb_kind() -> impl Strategy<Value = ControlKind> {
    prop_oneof![
        5 => Just(ControlKind::None),
        2 => Just(ControlKind::CondBranch),
        1 => Just(ControlKind::Jump),
        1 => Just(ControlKind::Call),
        1 => Just(ControlKind::Return),
        1 => Just(ControlKind::IndirectJump),
    ]
}

proptest! {
    #[test]
    fn trace_builder_invariants_on_arbitrary_streams(
        kinds in prop::collection::vec((arb_kind(), any::<bool>()), 1..400),
    ) {
        let mut builder = TraceBuilder::new(TraceConfig::default());
        let mut total_in = 0usize;
        let mut total_out = 0usize;
        let mut pc = 0x0040_0000u32;
        let mut traces = Vec::new();
        for (kind, taken) in kinds {
            total_in += 1;
            if let Some(t) = builder.push(&step(pc, kind, taken)) {
                traces.push(t);
            }
            pc = pc.wrapping_add(4);
        }
        if let Some(t) = builder.flush() {
            traces.push(t);
        }
        for t in &traces {
            total_out += t.len();
            prop_assert!(t.len() <= 16);
            prop_assert!(t.branch_count() <= 6);
            let controls = t.controls();
            for c in &controls[..controls.len().saturating_sub(1)] {
                prop_assert!(!c.kind.is_indirect());
            }
        }
        prop_assert_eq!(total_in, total_out, "every instruction lands in exactly one trace");
    }
}

proptest! {
    /// Full tooling roundtrip: instruction list → disassembly text →
    /// assembler → identical instruction list. Exercises the assembler's
    /// numeric-target paths and the disassembler together.
    #[test]
    fn disassemble_reassemble_roundtrip(
        instrs in prop::collection::vec(arb_instr(), 1..40),
    ) {
        use ntp::isa::{asm::assemble, disasm, TEXT_BASE};
        // Rewrite control-flow targets so they land inside this block
        // (the assembler validates branch range and jump region).
        let n = instrs.len() as u32;
        let fixed: Vec<Instr> = instrs
            .iter()
            .enumerate()
            .map(|(k, i)| match *i {
                Instr::Beq(a, b, _) => Instr::Beq(a, b, -(k as i16)),
                Instr::Bgeu(a, b, _) => Instr::Bgeu(a, b, (n - k as u32 - 1) as i16),
                Instr::J(_) => Instr::J(TEXT_BASE >> 2),
                Instr::Jal(_) => Instr::Jal((TEXT_BASE >> 2) + n - 1),
                other => other,
            })
            .collect();
        let mut text = String::new();
        for (k, i) in fixed.iter().enumerate() {
            let pc = TEXT_BASE + (k as u32) * 4;
            text.push_str("        ");
            text.push_str(&disasm::render(i, pc));
            text.push('\n');
        }
        let program = assemble(&text).expect("disassembly is valid assembly");
        prop_assert_eq!(program.instrs, fixed);
    }

    /// Encoded programs decode back through `Program::encode_text`.
    #[test]
    fn program_binary_roundtrip(instrs in prop::collection::vec(arb_instr(), 1..64)) {
        use ntp::isa::decode;
        let mut p = ntp::isa::Program::new();
        p.instrs = instrs.clone();
        let words = p.encode_text();
        let back: Vec<Instr> = words
            .iter()
            .map(|&w| decode(w).expect("encoded instructions decode"))
            .collect();
        prop_assert_eq!(back, instrs);
    }
}
