//! Reproducibility guarantees: every layer of the stack is deterministic,
//! so tables and figures regenerate bit-identically.

use ntp::core::{evaluate, NextTracePredictor, PredictorConfig};
use ntp::trace::{run_traces, TraceConfig, TraceRecord};
use ntp::workloads::{suite, ScalePreset};

fn capture(w: &ntp::workloads::Workload) -> (Vec<TraceRecord>, Vec<u32>) {
    let mut m = w.machine();
    let mut records = Vec::new();
    run_traces(&mut m, 50_000_000, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
    })
    .unwrap();
    (records, m.output().to_vec())
}

#[test]
fn workload_builds_are_reproducible() {
    for (a, b) in suite(ScalePreset::Tiny)
        .into_iter()
        .zip(suite(ScalePreset::Tiny))
    {
        assert_eq!(a.program, b.program, "{}", a.name);
        assert_eq!(a.expected_output, b.expected_output, "{}", a.name);
    }
}

#[test]
fn simulation_and_selection_are_reproducible() {
    for w in suite(ScalePreset::Tiny) {
        let (r1, o1) = capture(&w);
        let (r2, o2) = capture(&w);
        assert_eq!(r1, r2, "{}", w.name);
        assert_eq!(o1, o2, "{}", w.name);
        assert_eq!(o1, w.expected_output, "{}: self-check", w.name);
    }
}

#[test]
fn prediction_replay_is_reproducible() {
    let w = ntp::workloads::by_name("m88ksim", ScalePreset::Tiny);
    let (records, _) = capture(&w);
    let run = || {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, 7));
        evaluate(&mut p, &records)
    };
    assert_eq!(run(), run());
}
