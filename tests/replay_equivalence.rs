//! Property-style equivalence tests for the replay pipeline (no proptest
//! dependency: LCG-driven randomized streams, fixed seeds).
//!
//! Two families of invariants:
//!
//! * the instrumented replay ([`ntp::core::evaluate_with_sink`]) must
//!   produce exactly the same [`ntp::core::PredictorStats`] as the plain
//!   replay ([`ntp::core::evaluate`]) — telemetry must never perturb the
//!   experiment;
//! * the parallel runner's ordered merge must equal the serial map at any
//!   thread count — parallelism must never perturb the output.

use ntp::core::{
    evaluate, evaluate_with_sink, NextTracePredictor, PredictorConfig, TracePredictor,
    UnboundedConfig, UnboundedPredictor,
};
use ntp::runner::map_ordered_with;
use ntp::telemetry::NullSink;
use ntp::trace::{TraceId, TraceRecord};

/// Deterministic 64-bit LCG (Knuth MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
}

/// A randomized trace stream shaped like real capture output: a few dozen
/// static traces revisited with skewed frequencies, occasional calls and
/// returns, trace lengths 1..=16.
fn arb_stream(seed: u64, n: usize) -> Vec<TraceRecord> {
    let mut rng = Lcg(seed);
    // A small static working set so the predictor sees repeats.
    let statics: Vec<TraceId> = (0..48)
        .map(|_| {
            let r = rng.next();
            TraceId::new(
                0x0040_0000 + ((r as u32) % 0x4000) * 4,
                (r >> 32) as u8 & 0x3f,
                ((r >> 40) % 7) as u8,
            )
        })
        .collect();
    (0..n)
        .map(|_| {
            let r = rng.next();
            // Zipf-ish skew: favour low indices.
            let k = ((r % 48) * (r >> 8) % 48 / 7) as usize % statics.len();
            let len = 1 + ((r >> 16) % 16) as u8;
            let calls = ((r >> 24) % 3) as u8;
            let ret = (r >> 28) & 0b11 == 0;
            let ind = (r >> 31) & 0b111 == 0;
            TraceRecord::new(statics[k], len, calls, ret, ind)
        })
        .collect()
}

#[test]
fn evaluate_and_evaluate_with_sink_agree_exactly() {
    // Sweep seeds × configurations; instrumented and plain replay must
    // produce identical statistics in every case.
    for seed in [1u64, 0xdead_beef, 42, 7_777_777] {
        let records = arb_stream(seed, 4_000);
        let configs = [
            PredictorConfig::paper(12, 0),
            PredictorConfig::paper(15, 3),
            PredictorConfig::paper(15, 7),
            PredictorConfig::paper_with_alternate(15, 7),
        ];
        for cfg in configs {
            let mut a = NextTracePredictor::new(cfg);
            let mut b = NextTracePredictor::new(cfg);
            let plain = evaluate(&mut a, &records);
            let (instrumented, streaks) = evaluate_with_sink(&mut b, &records, &mut NullSink);
            assert_eq!(
                plain, instrumented,
                "telemetry perturbed replay (seed {seed}, cfg {cfg:?})"
            );
            // The streak histogram tallies one entry per terminated
            // misprediction streak — it can never exceed the number of
            // mispredictions.
            let mispredicts = plain.predictions - plain.correct;
            assert!(streaks.count() <= mispredicts.max(1));
        }
        // The unbounded model goes through the same generic path.
        let mut a = UnboundedPredictor::new(UnboundedConfig::paper(7));
        let mut b = UnboundedPredictor::new(UnboundedConfig::paper(7));
        let plain = evaluate(&mut a, &records);
        let (instrumented, _) = evaluate_with_sink(&mut b, &records, &mut NullSink);
        assert_eq!(plain, instrumented, "unbounded (seed {seed})");
    }
}

#[test]
fn instrumented_replay_leaves_predictor_in_identical_state() {
    // Beyond equal stats: both replays must leave the *predictor* able to
    // make the same next prediction (same tables, same history).
    let records = arb_stream(99, 3_000);
    let cfg = PredictorConfig::paper(15, 7);
    let mut a = NextTracePredictor::new(cfg);
    let mut b = NextTracePredictor::new(cfg);
    let _ = evaluate(&mut a, &records);
    let _ = evaluate_with_sink(&mut b, &records, &mut NullSink);
    assert_eq!(a.indices(), b.indices(), "index state diverged");
    assert_eq!(
        a.predict().target,
        b.predict().target,
        "next prediction diverged"
    );
}

#[test]
fn parallel_replay_grid_equals_serial_at_1_2_and_8_threads() {
    // The bench fan-out in miniature: a (stream × depth) replay grid,
    // mapped serially and through the pool at several widths. The ordered
    // merge must reproduce the serial result vector exactly.
    let streams: Vec<Vec<TraceRecord>> = (0..4).map(|s| arb_stream(1000 + s, 2_000)).collect();
    let jobs: Vec<(usize, usize)> = (0..streams.len())
        .flat_map(|s| (0..=3).map(move |depth| (s, depth * 2)))
        .collect();
    let run = |&(s, depth): &(usize, usize)| {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(12, depth));
        let stats = evaluate(&mut p, &streams[s]);
        (stats.predictions, stats.correct, stats.from_correlated)
    };
    let serial: Vec<_> = jobs.iter().map(run).collect();
    for threads in [1usize, 2, 8] {
        let got = map_ordered_with(threads, &jobs, |_, job| run(job));
        assert_eq!(got, serial, "threads={threads}");
    }
}
