//! A trace-cache front end in action: the next-trace predictor drives a
//! trace cache, and we measure delivered fetch bandwidth on a real
//! workload — the end-to-end purpose of the paper's mechanism.
//!
//! Compares three front ends on the `go` workload (the most branch-hostile
//! of the suite):
//!
//! 1. predictor at depth 0 (no path history),
//! 2. the paper's configuration (depth 7, hybrid + RHS),
//! 3. the paper's configuration with a larger table.
//!
//! ```text
//! cargo run --release -p ntp --example fetch_engine
//! ```

use ntp::core::{NextTracePredictor, PredictorConfig};
use ntp::engine::{FetchConfig, FetchEngine};
use ntp::trace::{run_traces, TraceConfig, TraceRecord};
use ntp::workloads::{by_name, ScalePreset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = by_name("go", ScalePreset::Tiny);
    println!("workload: {} — {}", workload.name, workload.description);

    let mut machine = workload.machine();
    let mut records: Vec<TraceRecord> = Vec::new();
    run_traces(&mut machine, 20_000_000, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
    })?;
    println!("captured {} traces\n", records.len());

    let configs = [
        ("depth 0, 2^12", PredictorConfig::paper(12, 0)),
        ("depth 7, 2^12", PredictorConfig::paper(12, 7)),
        ("depth 7, 2^18", PredictorConfig::paper(18, 7)),
    ];
    println!(
        "{:<16}{:>12}{:>12}{:>12}{:>12}",
        "front end", "bandwidth", "mispred%", "tc-miss", "cycles"
    );
    let mut last_bw = 0.0;
    for (label, cfg) in configs {
        let mut engine = FetchEngine::new(NextTracePredictor::new(cfg), FetchConfig::default());
        let stats = engine.run(&records);
        println!(
            "{:<16}{:>12.2}{:>12.2}{:>12}{:>12}",
            label,
            stats.fetch_bandwidth(),
            stats.mispredict_pct(),
            stats.cache_misses,
            stats.cycles
        );
        last_bw = stats.fetch_bandwidth();
    }
    assert!(last_bw > 1.0, "front end delivers instructions");
    Ok(())
}
