//! Bring your own workload: write TRISC assembly, run it, and see how
//! predictable its traces are under different predictors.
//!
//! The program below is a token-bucket state machine whose transitions
//! depend on a pseudo-random stream — a miniature protocol handler.
//!
//! ```text
//! cargo run --release -p ntp --example custom_workload
//! ```

use ntp::baselines::SequentialTracePredictor;
use ntp::core::{
    evaluate, NextTracePredictor, PredictorConfig, UnboundedConfig, UnboundedPredictor,
};
use ntp::isa::asm::assemble;
use ntp::sim::Machine;
use ntp::trace::{run_traces, TraceConfig, TraceRecord, TraceStats};

const SOURCE: &str = "
; A state machine: states 0..3, transitions driven by an LCG bit stream.
main:   li   s0, 0x1234567     ; lcg
        li   s1, 0             ; state
        li   s2, 40000         ; steps
        li   s3, 0             ; checksum
step:   li   t0, 1664525
        mul  s0, s0, t0
        li   t0, 1013904223
        add  s0, s0, t0
        srl  t1, s0, 13
        andi t1, t1, 3          ; event 0..3
        ; dispatch on state
        beqz s1, st0
        li   t2, 1
        beq  s1, t2, st1
        li   t2, 2
        beq  s1, t2, st2
        ; state 3: any event resets, bonus on event 3
        li   t2, 3
        bne  t1, t2, reset
        addi s3, s3, 7
reset:  li   s1, 0
        j    next
st0:    beqz t1, next           ; stay
        li   s1, 1
        addi s3, s3, 1
        j    next
st1:    li   t2, 2
        bltu t1, t2, back0
        li   s1, 2
        addi s3, s3, 2
        j    next
back0:  li   s1, 0
        j    next
st2:    li   t2, 3
        bne  t1, t2, hold
        li   s1, 3
        addi s3, s3, 3
hold:
next:   addi s2, s2, -1
        bnez s2, step
        out  s3
        halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(SOURCE)?;
    let mut machine = Machine::new(program);
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut stats = TraceStats::new();
    let mut sequential = SequentialTracePredictor::paper();
    run_traces(&mut machine, 10_000_000, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
        stats.record(t);
    })?;
    println!(
        "{} instructions, {} traces, {} static traces\n",
        machine.icount(),
        stats.traces(),
        stats.static_traces()
    );
    // The sequential baseline needs full traces; re-run streaming.
    let mut machine2 = Machine::new(machine.program().clone());
    run_traces(&mut machine2, 10_000_000, TraceConfig::default(), |t| {
        sequential.observe(t);
    })?;

    println!("{:<28}{:>12}", "predictor", "mispredict%");
    println!(
        "{:<28}{:>11.2}%",
        "sequential (idealized)",
        sequential.stats().trace_mispredict_pct()
    );
    for depth in [0, 3, 7] {
        let mut p = NextTracePredictor::new(PredictorConfig::paper(15, depth));
        let s = evaluate(&mut p, &records);
        println!(
            "{:<28}{:>11.2}%",
            format!("path-based, depth {depth}, 2^15"),
            s.mispredict_pct()
        );
    }
    let mut unbounded = UnboundedPredictor::new(UnboundedConfig::paper(7));
    let s = evaluate(&mut unbounded, &records);
    println!(
        "{:<28}{:>11.2}%  ({} contexts learned)",
        "unbounded, depth 7",
        s.mispredict_pct(),
        unbounded.corr_entries()
    );
    Ok(())
}
