//! Quickstart: assemble a tiny program, simulate it, build traces, and
//! watch the path-based next trace predictor learn it.
//!
//! ```text
//! cargo run --release -p ntp --example quickstart
//! ```

use ntp::core::{evaluate, NextTracePredictor, PredictorConfig};
use ntp::isa::asm::assemble;
use ntp::sim::Machine;
use ntp::trace::{run_traces, TraceConfig, TraceRecord, TraceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A little program: a loop whose body alternates between two paths and
    // calls a helper — enough structure for path correlation to matter.
    let program = assemble(
        "
main:   li   s0, 5000           ; iterations
        li   s1, 0              ; accumulator
loop:   andi t0, s0, 3
        beqz t0, slow
        addi s1, s1, 1
        j    next
slow:   jal  helper
        add  s1, s1, v0
next:   addi s0, s0, -1
        bnez s0, loop
        out  s1
        halt
helper: sll  v0, s1, 1
        andi v0, v0, 0xFF
        ret
",
    )?;

    // Simulate, selecting traces (max 16 instructions, 6 branches).
    let mut machine = Machine::new(program);
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut stats = TraceStats::new();
    run_traces(&mut machine, 1_000_000, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
        stats.record(t);
    })?;
    println!(
        "simulated {} instructions -> {} traces (avg {:.1} instrs, {} static)",
        machine.icount(),
        stats.traces(),
        stats.avg_trace_len(),
        stats.static_traces()
    );

    // Replay the trace stream through the paper's predictor (2^15-entry
    // correlating table, depth-7 path history, hybrid + return history
    // stack).
    let mut predictor = NextTracePredictor::new(PredictorConfig::paper(15, 7));
    let result = evaluate(&mut predictor, &records);
    println!(
        "predictions: {}  mispredict: {:.2}%  (correlated {}, secondary {}, cold {})",
        result.predictions,
        result.mispredict_pct(),
        result.from_correlated,
        result.from_secondary,
        result.cold
    );
    assert!(result.mispredict_pct() < 5.0, "this loop is learnable");
    println!("program output: {:?}", machine.output());
    Ok(())
}
