//! What next-trace prediction buys at the system level: a trace-processor
//! throughput model (the architecture the predictor was designed for).
//!
//! Sweeps processing-element count × predictor depth on a real workload and
//! prints the resulting IPC — prediction accuracy is the lever that lets
//! extra PEs pay off.
//!
//! ```text
//! cargo run --release -p ntp --example trace_processor
//! ```

use ntp::core::{NextTracePredictor, PredictorConfig};
use ntp::engine::{TraceProcessor, TraceProcessorConfig};
use ntp::trace::{run_traces, TraceConfig, TraceRecord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ntp::workloads::m88ksim::build(6);
    println!("workload: {} — {}\n", workload.name, workload.description);

    let mut machine = workload.machine();
    let mut records: Vec<TraceRecord> = Vec::new();
    run_traces(&mut machine, 20_000_000, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
    })?;

    println!(
        "{:<8}{:>14}{:>14}{:>14}",
        "PEs", "depth 0 IPC", "depth 7 IPC", "speedup"
    );
    for pes in [1usize, 2, 4, 8] {
        let mut ipc = [0.0f64; 2];
        for (k, depth) in [0usize, 7].into_iter().enumerate() {
            let mut tp = TraceProcessor::new(
                NextTracePredictor::new(PredictorConfig::paper(15, depth)),
                TraceProcessorConfig {
                    pe_count: pes,
                    ..TraceProcessorConfig::default()
                },
            );
            ipc[k] = tp.run(&records).ipc();
        }
        println!(
            "{:<8}{:>14.2}{:>14.2}{:>13.2}x",
            pes,
            ipc[0],
            ipc[1],
            ipc[1] / ipc[0]
        );
    }
    println!("\nDeeper path history turns extra PEs into throughput.");
    Ok(())
}
