//! Explore the predictor's design space on one workload: history depth,
//! table size, return history stack, and the cost-reduced entry format.
//!
//! ```text
//! cargo run --release -p ntp --example predictor_tuning
//! ```

use ntp::core::{evaluate, NextTracePredictor, PredictorConfig, RhsConfig, StoredTarget};
use ntp::trace::{run_traces, TraceConfig, TraceRecord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 rounds (~3M instructions) so the depth trend is past warm-up.
    let workload = ntp::workloads::cc::build(8);
    println!("workload: {} — {}\n", workload.name, workload.analog_of);

    let mut machine = workload.machine();
    let mut records: Vec<TraceRecord> = Vec::new();
    run_traces(&mut machine, 20_000_000, TraceConfig::default(), |t| {
        records.push(TraceRecord::from(t));
    })?;

    let score = |cfg: PredictorConfig| -> f64 {
        let mut p = NextTracePredictor::new(cfg);
        evaluate(&mut p, &records).mispredict_pct()
    };

    println!("history depth (2^15 entries, hybrid+RHS):");
    for depth in 0..=7 {
        let m = score(PredictorConfig::paper(15, depth));
        println!("  depth {depth}: {m:6.2}%  {}", bar(m));
    }

    println!("\ntable size (depth 7):");
    for bits in [12, 15, 18] {
        let m = score(PredictorConfig::paper(bits, 7));
        println!("  2^{bits}: {m:6.2}%  {}", bar(m));
    }

    println!("\nreturn history stack (2^15, depth 7):");
    let with = score(PredictorConfig::paper(15, 7));
    let without = score(PredictorConfig {
        rhs: None,
        ..PredictorConfig::paper(15, 7)
    });
    let deep = score(PredictorConfig {
        rhs: Some(RhsConfig { max_depth: 64 }),
        ..PredictorConfig::paper(15, 7)
    });
    println!("  off:      {without:6.2}%");
    println!("  depth 16: {with:6.2}%");
    println!("  depth 64: {deep:6.2}%");

    println!("\nentry format (2^15, depth 7):");
    let full = PredictorConfig::paper(15, 7);
    let hashed = PredictorConfig {
        stored_target: StoredTarget::Hashed,
        ..full
    };
    println!(
        "  full 36-bit targets:   {:6.2}%  ({} KB table)",
        score(full),
        full.corr_table_bits() / 8192
    );
    println!(
        "  hashed 16-bit targets: {:6.2}%  ({} KB table)",
        score(hashed),
        hashed.corr_table_bits() / 8192
    );
    Ok(())
}

/// A crude text bar so trends are visible at a glance.
fn bar(pct: f64) -> String {
    "#".repeat((pct / 2.0).round() as usize)
}
